"""Packed flat-array storage for batches of RR sets.

A batch of RR sets is two int64 arrays — ``nodes`` (all members,
concatenated) and ``offsets`` (set ``i`` occupies
``nodes[offsets[i]:offsets[i + 1]]``) — plus a lazily built CSR
node→set-membership index.  Compared to ``List[Set[int]]`` with a
dict-of-lists inverted index, the packed form:

* makes coverage counting, spread estimation and greedy max-cover pure
  array operations (``np.bincount``, fancy indexing, vectorized argmax);
* crosses process boundaries as two flat buffer pickles instead of
  thousands of Python set pickles (the execution backends ship this form);
* concatenates chunk results without touching individual members.

Membership order inside a set is irrelevant to every consumer (sets!), so
producers may append members in any deterministic order.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["PackedRRSets", "PackedSetSequence"]

_EMPTY = np.empty(0, dtype=np.int64)


class PackedRRSets:
    """Immutable flat-array batch of RR sets over ``num_nodes`` nodes."""

    __slots__ = (
        "num_nodes",
        "nodes",
        "offsets",
        "_member_offsets",
        "_member_sets",
        "_first_occurrence",
    )

    def __init__(
        self, num_nodes: int, nodes: np.ndarray, offsets: np.ndarray
    ) -> None:
        if num_nodes < 0:
            raise ValidationError(f"num_nodes must be >= 0, got {num_nodes}")
        nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) == 0 or offsets[0] != 0:
            raise ValidationError("offsets must be 1-d and start at 0")
        if offsets[-1] != len(nodes) or np.any(np.diff(offsets) < 0):
            raise ValidationError(
                "offsets must be non-decreasing and end at len(nodes)"
            )
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= num_nodes):
            raise ValidationError(
                f"member nodes must be in [0, {num_nodes})"
            )
        self.num_nodes = int(num_nodes)
        self.nodes = nodes
        self.offsets = offsets
        self._member_offsets: Optional[np.ndarray] = None
        self._member_sets: Optional[np.ndarray] = None
        self._first_occurrence: Optional[np.ndarray] = None
        self.nodes.setflags(write=False)
        self.offsets.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_sets(
        cls, num_nodes: int, rr_sets: Sequence[Iterable[int]]
    ) -> "PackedRRSets":
        """Pack an iterable-of-iterables (the legacy representation)."""
        arrays = [
            np.fromiter((int(node) for node in rr_set), dtype=np.int64)
            for rr_set in rr_sets
        ]
        return cls.from_node_arrays(num_nodes, arrays)

    @classmethod
    def from_node_arrays(
        cls, num_nodes: int, arrays: Sequence[np.ndarray]
    ) -> "PackedRRSets":
        """Pack one int64 member array per RR set."""
        offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum([len(array) for array in arrays], out=offsets[1:])
        nodes = np.concatenate(arrays) if arrays else _EMPTY
        return cls(num_nodes, nodes, offsets)

    @classmethod
    def from_chunks(
        cls, num_nodes: int, chunks: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> "PackedRRSets":
        """Concatenate ``(nodes, offsets)`` chunk payloads, in order.

        This is how backend chunk results merge: pure array concatenation,
        never touching individual members.  Chunk arrays may be zero-copy
        views into shared memory (:mod:`repro.backend.shm`): the
        concatenation writes the batch into fresh arrays, so the result
        never aliases a transport buffer the producer may later reuse.
        """
        if not chunks:
            return cls(num_nodes, _EMPTY, np.zeros(1, dtype=np.int64))
        node_parts = [np.asarray(nodes, dtype=np.int64) for nodes, _ in chunks]
        counts = [np.diff(np.asarray(offs, dtype=np.int64)) for _, offs in chunks]
        lengths = np.concatenate(counts) if counts else _EMPTY
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return cls(num_nodes, np.concatenate(node_parts), offsets)

    def chunk_payload(self) -> Tuple[np.ndarray, np.ndarray]:
        """The raw ``(nodes, offsets)`` pair (what backends ship)."""
        return self.nodes, self.offsets

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Number of RR sets in the batch."""
        return len(self.offsets) - 1

    def __len__(self) -> int:
        return self.num_sets

    def set_nodes(self, index: int) -> np.ndarray:
        """Members of set *index* (read-only view)."""
        if not 0 <= index < self.num_sets:
            raise ValidationError(
                f"set index must be in [0, {self.num_sets}), got {index}"
            )
        return self.nodes[self.offsets[index]:self.offsets[index + 1]]

    def to_sets(self) -> List[Set[int]]:
        """Materialise the legacy ``List[Set[int]]`` representation."""
        flat = self.nodes.tolist()
        bounds = self.offsets.tolist()
        return [
            set(flat[bounds[index]:bounds[index + 1]])
            for index in range(self.num_sets)
        ]

    def as_set_sequence(self) -> "PackedSetSequence":
        """A lazy ``Sequence[Set[int]]`` facade over the packed batch.

        Unlike :meth:`to_sets`, no set is built until somebody indexes it
        — the set-compatibility surface of the execution backends stops
        paying an eager whole-batch conversion when callers only touch a
        few sets (or none, when the packed form is what they really use).
        """
        return PackedSetSequence(self)

    # ------------------------------------------------------------------
    # Membership index (CSR node → set ids)
    # ------------------------------------------------------------------

    def membership(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(member_offsets, member_sets)``: set ids containing each node.

        Node ``v``'s sets are
        ``member_sets[member_offsets[v]:member_offsets[v + 1]]``, ascending.
        Built once, on first use, by one stable argsort of ``nodes``.
        """
        if self._member_offsets is None:
            set_ids = np.repeat(
                np.arange(self.num_sets, dtype=np.int64), np.diff(self.offsets)
            )
            order = np.argsort(self.nodes, kind="stable")
            member_sets = set_ids[order]
            counts = np.bincount(self.nodes, minlength=self.num_nodes)
            member_offsets = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=member_offsets[1:])
            member_sets.setflags(write=False)
            member_offsets.setflags(write=False)
            self._member_offsets = member_offsets
            self._member_sets = member_sets
        return self._member_offsets, self._member_sets

    def sets_containing(self, node: int) -> np.ndarray:
        """Set ids containing *node* (ascending, read-only view)."""
        if not 0 <= node < self.num_nodes:
            return _EMPTY
        member_offsets, member_sets = self.membership()
        return member_sets[member_offsets[node]:member_offsets[node + 1]]

    def coverage_counts(self) -> np.ndarray:
        """Per-node count of containing sets (``np.bincount`` over members)."""
        return np.bincount(self.nodes, minlength=self.num_nodes)

    def first_occurrence(self) -> np.ndarray:
        """Position in ``nodes`` where each node first appears.

        Nodes absent from every set get the sentinel ``len(nodes)``.  This
        is the producer's emission order — for batches packed from Python
        sets it equals the membership-dict insertion order of the historical
        ``List[Set[int]]`` representation, which is what lets the greedy
        cover's tie-breaking replicate earlier releases exactly.
        """
        if self._first_occurrence is None:
            first = np.full(self.num_nodes, len(self.nodes), dtype=np.int64)
            np.minimum.at(
                first, self.nodes, np.arange(len(self.nodes), dtype=np.int64)
            )
            first.setflags(write=False)
            self._first_occurrence = first
        return self._first_occurrence

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"PackedRRSets(num_sets={self.num_sets}, "
            f"total_members={len(self.nodes)}, num_nodes={self.num_nodes})"
        )


class PackedSetSequence(SequenceABC):
    """Lazy ``Sequence[Set[int]]`` view of a :class:`PackedRRSets` batch.

    Sets materialise one at a time on first access and are cached, so
    repeated indexing stays O(set size) once and iteration costs exactly
    one conversion per set — never the whole batch up front.  Equality
    compares element-wise against any other sequence of sets, which keeps
    the historical ``backend.sample_rr_sets(...) == [set(...), ...]``
    comparisons working unchanged.
    """

    __slots__ = ("_packed", "_cache")

    def __init__(self, packed: PackedRRSets) -> None:
        self._packed = packed
        self._cache: List[Optional[Set[int]]] = [None] * packed.num_sets

    @property
    def packed(self) -> PackedRRSets:
        """The underlying packed batch (no conversion)."""
        return self._packed

    def __len__(self) -> int:
        return self._packed.num_sets

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[position] for position in range(len(self))[index]]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"set index {index} out of range")
        cached = self._cache[index]
        if cached is None:
            cached = set(self._packed.set_nodes(index).tolist())
            self._cache[index] = cached
        return cached

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedSetSequence) and other._packed is self._packed:
            return True
        if not isinstance(other, SequenceABC) or isinstance(other, (str, bytes)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(self[index] == other[index] for index in range(len(self)))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable-ish container semantics, like list

    def __repr__(self) -> str:
        return f"PackedSetSequence(num_sets={len(self)})"

"""Pluggable spread estimators.

The IM algorithms and the best-effort keyword-IM framework accept any object
implementing the :class:`SpreadEstimator` protocol, so the exact-evaluation
strategy (Monte Carlo vs RR sets) is a configuration choice — one of the
trade-offs benchmark E2/E7 measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, Sequence

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.propagation.ic import IndependentCascade
from repro.propagation.kernels import DEFAULT_RR_KERNEL
from repro.propagation.rrsets import RRSetCollection
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.backend.base import ExecutionBackend

__all__ = ["SpreadEstimator", "MonteCarloSpreadEstimator", "RRSetSpreadEstimator"]


class SpreadEstimator(Protocol):
    """Anything that can estimate σ(seeds) for fixed edge probabilities."""

    def spread(self, seeds: Sequence[int]) -> float:
        """Estimated expected spread of *seeds*."""
        ...


class MonteCarloSpreadEstimator:
    """Estimates spread by forward IC simulation.

    A fresh child generator is derived per seed-set evaluation from the
    estimator's stream, so evaluations are reproducible given construction
    order.
    """

    def __init__(
        self,
        graph: SocialGraph,
        edge_probabilities: np.ndarray,
        num_samples: int = 200,
        seed: SeedLike = None,
        kernel: str = "vectorized",
    ) -> None:
        check_positive(num_samples, "num_samples")
        self._cascade = IndependentCascade(graph, edge_probabilities, kernel)
        self.num_samples = num_samples
        self._rng = as_generator(seed)

    def spread(self, seeds: Sequence[int]) -> float:
        """Monte-Carlo spread estimate."""
        return self._cascade.estimate_spread(seeds, self.num_samples, self._rng)


class RRSetSpreadEstimator:
    """Estimates spread against a fixed RR-set collection.

    Deterministic given the collection — repeated evaluation of the same
    seed set returns the same number, which keeps lazy-greedy loops stable.
    """

    def __init__(
        self,
        graph: SocialGraph,
        edge_probabilities: np.ndarray,
        num_sets: int = 2000,
        seed: SeedLike = None,
        collection: Optional[RRSetCollection] = None,
        backend: Optional["ExecutionBackend"] = None,
        kernel: str = DEFAULT_RR_KERNEL,
    ) -> None:
        if collection is None:
            collection = RRSetCollection.sample(
                graph,
                edge_probabilities,
                num_sets,
                seed,
                backend=backend,
                kernel=kernel,
            )
        self.collection = collection

    def spread(self, seeds: Sequence[int]) -> float:
        """RR-set spread estimate."""
        return self.collection.estimate_spread(seeds)

"""Reverse-reachable (RR) set sampling — reference [8] (Tang et al., TIM).

An RR set for a uniformly random root ``v`` is the set of nodes that reach
``v`` in a sampled live-edge world.  The fraction of RR sets a seed set
intersects, scaled by ``n``, is an unbiased estimate of its influence
spread, and greedy maximum coverage over RR sets yields the standard
``(1 − 1/e − ε)`` IM approximation.  OCTOPUS uses RR machinery both as the
query-time IM baseline and, with fixed thresholds, inside the influencer
index of Section II-D.

Sampling runs on one of three kernels (see :mod:`repro.propagation.kernels`):
the frontier-batched ``"vectorized"`` kernel (default), the node-at-a-time
``"legacy"`` kernel kept for bit-compatibility with earlier releases, or the
chunk-batched ``"native"`` kernel whose compiled C core (optional — a
draw-for-draw identical NumPy fallback always works) emits the packed
payload in one call per chunk.  Batches are stored packed
(:class:`~repro.propagation.packed.PackedRRSets`), which makes every
estimator below a flat array operation; greedy max-cover's inner
cover-update step likewise runs compiled when the extension is loaded,
with byte-identical selections either way.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.propagation import native
from repro.propagation.kernels import (
    DEFAULT_RR_KERNEL,
    check_rr_kernel,
    gather_csr_slices,
    reverse_reachable_frontier,
)
from repro.propagation.packed import PackedRRSets
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_node_id, check_positive

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.backend.base import ExecutionBackend

__all__ = ["generate_rr_set", "sample_packed_rr_sets", "RRSetCollection"]


def _reverse_reachable(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    root: int,
    rng: np.random.Generator,
) -> Set[int]:
    """The legacy node-at-a-time sampling core (``rr_kernel="legacy"``).

    *rng* must already be a ``Generator``.  Kept exactly as shipped in
    earlier releases: it draws one coin block per visited node, so a fixed
    seed reproduces historical results bit for bit.
    """
    visited: Set[int] = {root}
    frontier: List[int] = [root]
    while frontier:
        node = frontier.pop()
        start, stop = graph.in_offsets[node], graph.in_offsets[node + 1]
        degree = stop - start
        if degree == 0:
            continue
        coins = rng.random(degree)
        sources = graph.in_sources[start:stop]
        edge_ids = graph.in_edge_ids[start:stop]
        hits = np.flatnonzero(coins < edge_probabilities[edge_ids])
        for offset in hits:
            source = int(sources[offset])
            if source not in visited:
                visited.add(source)
                frontier.append(source)
    return visited


def sample_packed_rr_sets(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    count: int,
    rng: np.random.Generator,
    roots: Optional[Sequence[int]] = None,
    kernel: str = DEFAULT_RR_KERNEL,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample *count* RR sets from one RNG stream into packed arrays.

    The bulk-sampling core shared by the serial sampler and the execution
    backends' chunk workers.  Roots are taken per index from *roots* when
    given, otherwise drawn uniformly from *rng* — interleaved with the
    sampling draws exactly as the historical sequential sampler interleaved
    them, which is what keeps ``kernel="legacy"`` bit-compatible.

    Returns the ``(nodes, offsets)`` chunk payload
    (:meth:`PackedRRSets.chunk_payload` form).  ``kernel="native"`` hands
    the whole chunk to :func:`repro.propagation.native.sample_rr_chunk`
    in one call — the compiled core (or its identical NumPy twin) writes
    the packed buffers directly instead of packing per-sample arrays.
    """
    edge_probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if kernel == "native":
        root_array = (
            None
            if roots is None
            else np.asarray(list(roots), dtype=np.int64)
        )
        return native.sample_rr_chunk(
            graph, edge_probabilities, count, rng, root_array
        )
    arrays: List[np.ndarray] = []
    if kernel == "legacy":
        for index in range(count):
            if roots is not None:
                root = int(roots[index])
            else:
                root = int(rng.integers(0, graph.num_nodes))
            rr_set = _reverse_reachable(graph, edge_probabilities, root, rng)
            arrays.append(np.fromiter(rr_set, dtype=np.int64, count=len(rr_set)))
    else:
        # One boolean scratch array per chunk; each sample clears only the
        # entries it touched, so the per-sample reset is O(|RR set|).
        scratch = np.zeros(graph.num_nodes, dtype=bool)
        for index in range(count):
            if roots is not None:
                root = int(roots[index])
            else:
                root = int(rng.integers(0, graph.num_nodes))
            members = reverse_reachable_frontier(
                graph, edge_probabilities, root, rng, visited=scratch
            )
            scratch[members] = False
            arrays.append(members)
    return PackedRRSets.from_node_arrays(graph.num_nodes, arrays).chunk_payload()


def generate_rr_set(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    root: int,
    seed: SeedLike = None,
    kernel: str = DEFAULT_RR_KERNEL,
) -> Set[int]:
    """Sample one RR set rooted at *root*.

    Performs a reverse BFS where each in-edge is crossed with its activation
    probability; coins are flipped lazily, so each edge is examined at most
    once per sample, which matches the IC distribution.  *kernel* selects
    the frontier-batched vectorized core (default) or the legacy node-at-a-
    time core (see :mod:`repro.propagation.kernels`).

    A shared :class:`~numpy.random.Generator` passed as *seed* is used
    directly (no per-call re-wrapping), so hot loops can hand one stream
    across many samples at no coercion cost.
    """
    check_node_id(root, graph.num_nodes, "root")
    check_rr_kernel(kernel)
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = as_generator(seed)
    edge_probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if kernel == "legacy":
        return _reverse_reachable(graph, edge_probabilities, root, rng)
    if kernel == "native":
        nodes, _offsets = native.sample_rr_chunk(
            graph,
            edge_probabilities,
            1,
            rng,
            np.array([root], dtype=np.int64),
        )
        return set(nodes.tolist())
    members = reverse_reachable_frontier(graph, edge_probabilities, root, rng)
    return set(members.tolist())


class RRSetCollection:
    """A batch of RR sets with the inverted node→sets index.

    Stored packed (flat ``nodes`` + ``offsets`` arrays with a CSR
    node→set-membership index — see
    :class:`~repro.propagation.packed.PackedRRSets`), so spread estimation
    and greedy maximum-coverage seed selection are array operations.
    """

    def __init__(
        self,
        graph: SocialGraph,
        rr_sets: Union[PackedRRSets, Sequence[Iterable[int]]],
    ) -> None:
        if isinstance(rr_sets, PackedRRSets):
            packed = rr_sets
        else:
            packed = PackedRRSets.from_sets(graph.num_nodes, rr_sets)
        if packed.num_sets == 0:
            raise ValidationError("RRSetCollection requires at least one RR set")
        self.graph = graph
        self.packed = packed
        self._materialized: Optional[List[Set[int]]] = None

    @property
    def rr_sets(self) -> List[Set[int]]:
        """The legacy ``List[Set[int]]`` view (materialised lazily)."""
        if self._materialized is None:
            self._materialized = self.packed.to_sets()
        return self._materialized

    @classmethod
    def sample(
        cls,
        graph: SocialGraph,
        edge_probabilities: np.ndarray,
        num_sets: int,
        seed: SeedLike = None,
        roots: Optional[Sequence[int]] = None,
        *,
        backend: Optional["ExecutionBackend"] = None,
        chunk_size: Optional[int] = None,
        kernel: str = DEFAULT_RR_KERNEL,
    ) -> "RRSetCollection":
        """Sample *num_sets* RR sets with uniform (or given) roots.

        Without a *backend* the historical single-stream sequential sampler
        runs (with ``kernel="legacy"``, bit-identical to earlier releases).
        With a *backend* the work is split into fixed-size chunks with
        per-chunk spawned RNG streams, so the result is identical for every
        backend at every worker count — serial, threads or processes (see
        :mod:`repro.backend`).  Either way the result is deterministic per
        kernel; the two kernels draw in different orders and need not match
        each other.
        """
        check_rr_kernel(kernel)
        if backend is not None:
            sample_kwargs = {"roots": roots, "kernel": kernel}
            if chunk_size is not None:
                sample_kwargs["chunk_size"] = chunk_size
            packed = backend.sample_rr_sets_packed(
                graph, edge_probabilities, num_sets, seed, **sample_kwargs
            )
            return cls(graph, packed)
        check_positive(num_sets, "num_sets")
        if graph.num_nodes == 0:
            raise ValidationError("cannot sample RR sets on an empty graph")
        root_cycle: Optional[List[int]] = None
        if roots is not None:
            root_cycle = [int(root) for root in roots]
            for root in root_cycle:
                check_node_id(root, graph.num_nodes, "root")
            root_cycle = [
                root_cycle[index % len(root_cycle)] for index in range(num_sets)
            ]
        rng = as_generator(seed)
        nodes, offsets = sample_packed_rr_sets(
            graph, edge_probabilities, num_sets, rng, root_cycle, kernel
        )
        return cls(graph, PackedRRSets(graph.num_nodes, nodes, offsets))

    def __len__(self) -> int:
        return self.packed.num_sets

    def coverage_of(self, node: int) -> int:
        """Number of RR sets containing *node*."""
        return int(self.packed.sets_containing(node).size)

    def _covered_set_count(self, seeds: Sequence[int]) -> int:
        """Number of RR sets intersecting *seeds* (array gather + unique)."""
        if len(seeds) == 0:
            return 0
        member_offsets, member_sets = self.packed.membership()
        seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
        seed_array = seed_array[
            (seed_array >= 0) & (seed_array < self.graph.num_nodes)
        ]
        if seed_array.size == 0:
            return 0
        indices = gather_csr_slices(
            member_offsets[seed_array], member_offsets[seed_array + 1]
        )
        return int(np.unique(member_sets[indices]).size)

    def estimate_spread(self, seeds: Sequence[int]) -> float:
        """Unbiased spread estimate: ``n · (covered sets / total sets)``."""
        covered = self._covered_set_count(seeds)
        return self.graph.num_nodes * covered / self.packed.num_sets

    def greedy_max_cover(self, k: int) -> Tuple[List[int], float]:
        """Greedy maximum coverage: the TIM/IMM node-selection phase.

        Runs in O(Σ|R|) total: each round takes the max of the per-node
        coverage array (ties break by first appearance in the packed batch
        — exactly the membership-dict insertion order of the historical
        implementation, so selections reproduce earlier releases) and
        subtracts the member counts of the newly covered sets, so no set's
        members are walked more than once.  The cover-update inner step
        (:func:`repro.propagation.native.apply_cover_seed`) runs on the
        compiled extension when loaded and on the ``np.bincount`` path
        otherwise — same exact integer arithmetic, so the selection
        sequence never depends on which one ran.  Returns the seed list
        and the estimated spread of the full set.
        """
        check_positive(k, "k")
        packed = self.packed
        num_nodes = self.graph.num_nodes
        member_offsets, member_sets = packed.membership()
        first_seen = packed.first_occurrence()
        coverage = packed.coverage_counts().astype(np.int64)
        covered = np.zeros(packed.num_sets, dtype=bool)
        seeds: List[int] = []
        for _ in range(min(k, num_nodes)):
            best_cover = int(coverage.max())
            if best_cover <= 0:
                break
            candidates = np.flatnonzero(coverage == best_cover)
            best = int(candidates[np.argmin(first_seen[candidates])])
            seeds.append(best)
            native.apply_cover_seed(
                best,
                member_offsets,
                member_sets,
                covered,
                packed.offsets,
                packed.nodes,
                coverage,
            )
        spread = num_nodes * float(covered.sum()) / packed.num_sets
        return seeds, spread

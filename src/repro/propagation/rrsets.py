"""Reverse-reachable (RR) set sampling — reference [8] (Tang et al., TIM).

An RR set for a uniformly random root ``v`` is the set of nodes that reach
``v`` in a sampled live-edge world.  The fraction of RR sets a seed set
intersects, scaled by ``n``, is an unbiased estimate of its influence
spread, and greedy maximum coverage over RR sets yields the standard
``(1 − 1/e − ε)`` IM approximation.  OCTOPUS uses RR machinery both as the
query-time IM baseline and, with fixed thresholds, inside the influencer
index of Section II-D.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_node_id, check_positive

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.backend.base import ExecutionBackend

__all__ = ["generate_rr_set", "RRSetCollection"]


def _reverse_reachable(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    root: int,
    rng: np.random.Generator,
) -> Set[int]:
    """The unchecked sampling core: *rng* must already be a ``Generator``.

    Split out of :func:`generate_rr_set` so bulk samplers (the collection
    sampler, the execution backends' chunk workers) pay neither the root
    validation nor the seed coercion on every one of their thousands of
    calls.
    """
    visited: Set[int] = {root}
    frontier: List[int] = [root]
    while frontier:
        node = frontier.pop()
        start, stop = graph.in_offsets[node], graph.in_offsets[node + 1]
        degree = stop - start
        if degree == 0:
            continue
        coins = rng.random(degree)
        sources = graph.in_sources[start:stop]
        edge_ids = graph.in_edge_ids[start:stop]
        hits = np.flatnonzero(coins < edge_probabilities[edge_ids])
        for offset in hits:
            source = int(sources[offset])
            if source not in visited:
                visited.add(source)
                frontier.append(source)
    return visited


def generate_rr_set(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    root: int,
    seed: SeedLike = None,
) -> Set[int]:
    """Sample one RR set rooted at *root*.

    Performs a reverse BFS where each in-edge is crossed with its activation
    probability; coins are flipped lazily, edge by edge, which matches the IC
    distribution because each edge is examined at most once per sample.

    A shared :class:`~numpy.random.Generator` passed as *seed* is used
    directly (no per-call re-wrapping), so hot loops can hand one stream
    across many samples at no coercion cost.
    """
    check_node_id(root, graph.num_nodes, "root")
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = as_generator(seed)
    return _reverse_reachable(graph, edge_probabilities, root, rng)


class RRSetCollection:
    """A batch of RR sets with the inverted node→sets index.

    Supports unbiased spread estimation and greedy maximum-coverage seed
    selection.
    """

    def __init__(self, graph: SocialGraph, rr_sets: List[Set[int]]) -> None:
        if not rr_sets:
            raise ValidationError("RRSetCollection requires at least one RR set")
        self.graph = graph
        self.rr_sets = rr_sets
        self._membership: Dict[int, List[int]] = {}
        for set_index, rr_set in enumerate(rr_sets):
            for node in rr_set:
                self._membership.setdefault(node, []).append(set_index)

    @classmethod
    def sample(
        cls,
        graph: SocialGraph,
        edge_probabilities: np.ndarray,
        num_sets: int,
        seed: SeedLike = None,
        roots: Optional[Sequence[int]] = None,
        *,
        backend: Optional["ExecutionBackend"] = None,
        chunk_size: Optional[int] = None,
    ) -> "RRSetCollection":
        """Sample *num_sets* RR sets with uniform (or given) roots.

        Without a *backend* the historical single-stream sequential sampler
        runs (bit-identical to earlier releases).  With a *backend* the work
        is split into fixed-size chunks with per-chunk spawned RNG streams,
        so the result is identical for every backend at every worker count —
        serial, threads or processes (see :mod:`repro.backend`).
        """
        if backend is not None:
            sample_kwargs = {"roots": roots}
            if chunk_size is not None:
                sample_kwargs["chunk_size"] = chunk_size
            rr_sets = backend.sample_rr_sets(
                graph, edge_probabilities, num_sets, seed, **sample_kwargs
            )
            return cls(graph, rr_sets)
        check_positive(num_sets, "num_sets")
        if graph.num_nodes == 0:
            raise ValidationError("cannot sample RR sets on an empty graph")
        if roots is not None:
            for root in roots:
                check_node_id(int(root), graph.num_nodes, "root")
        rng = as_generator(seed)
        rr_sets = []
        for index in range(num_sets):
            if roots is not None:
                root = int(roots[index % len(roots)])
            else:
                root = int(rng.integers(0, graph.num_nodes))
            rr_sets.append(
                _reverse_reachable(graph, edge_probabilities, root, rng)
            )
        return cls(graph, rr_sets)

    def __len__(self) -> int:
        return len(self.rr_sets)

    def coverage_of(self, node: int) -> int:
        """Number of RR sets containing *node*."""
        return len(self._membership.get(node, []))

    def estimate_spread(self, seeds: Sequence[int]) -> float:
        """Unbiased spread estimate: ``n · (covered sets / total sets)``."""
        seed_set = set(int(s) for s in seeds)
        covered = sum(
            1 for rr_set in self.rr_sets if not seed_set.isdisjoint(rr_set)
        )
        return self.graph.num_nodes * covered / len(self.rr_sets)

    def greedy_max_cover(self, k: int) -> Tuple[List[int], float]:
        """Greedy maximum coverage: the TIM/IMM node-selection phase.

        Returns the seed list and the estimated spread of the full set.
        Runs in O(Σ|R|) via coverage counting with lazy invalidation.
        """
        check_positive(k, "k")
        coverage = {node: len(sets) for node, sets in self._membership.items()}
        covered = np.zeros(len(self.rr_sets), dtype=bool)
        seeds: List[int] = []
        for _ in range(min(k, self.graph.num_nodes)):
            best_node = -1
            best_cover = -1
            for node, count in coverage.items():
                if count > best_cover and node not in seeds:
                    best_node = node
                    best_cover = count
            if best_node == -1 or best_cover <= 0:
                break
            seeds.append(best_node)
            for set_index in self._membership[best_node]:
                if covered[set_index]:
                    continue
                covered[set_index] = True
                for member in self.rr_sets[set_index]:
                    coverage[member] -= 1
        spread = self.graph.num_nodes * covered.sum() / len(self.rr_sets)
        return seeds, float(spread)

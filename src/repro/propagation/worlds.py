"""Fixed live-edge possible worlds: the coupling device behind the
personalized-keyword-suggestion estimator.

A *world* assigns each edge a uniform threshold ``θ_e``; under a query topic
distribution γ the edge is *live* iff ``θ_e ≤ pp_e(γ)``.  Since
``P(θ_e ≤ p) = p``, reachability in a world distributes exactly as an IC
cascade — but crucially the thresholds are shared across all γ, so spreads
under different keyword sets are *coupled*: if ``pp_e(γ) ≤ pp_e(γ′)`` on
every edge then the live-edge graph under γ is a subgraph of the one under
γ′.  This monotone coupling is what makes lazy greedy over keyword sets
consistent and what the influencer index (Section II-D) exploits.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_node_id, check_positive

__all__ = ["LiveEdgeWorld", "WorldEnsemble"]


class LiveEdgeWorld:
    """One possible world: a fixed threshold per edge."""

    def __init__(self, graph: SocialGraph, thresholds: np.ndarray) -> None:
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (graph.num_edges,):
            raise ValidationError(
                f"thresholds must have shape ({graph.num_edges},), "
                f"got {thresholds.shape}"
            )
        self.graph = graph
        self.thresholds = thresholds
        self.thresholds.setflags(write=False)

    @classmethod
    def sample(cls, graph: SocialGraph, seed: SeedLike = None) -> "LiveEdgeWorld":
        """Draw a world with iid uniform thresholds."""
        rng = as_generator(seed)
        return cls(graph, rng.random(graph.num_edges))

    def live_mask(self, edge_probabilities: np.ndarray) -> np.ndarray:
        """Boolean liveness per edge under the given probabilities."""
        return self.thresholds <= edge_probabilities

    def reachable_from(
        self, seeds: Sequence[int], edge_probabilities: np.ndarray
    ) -> Set[int]:
        """Nodes reachable from *seeds* over live edges."""
        mask = self.live_mask(edge_probabilities)
        activated: Set[int] = set()
        frontier: List[int] = []
        for node in seeds:
            node = check_node_id(int(node), self.graph.num_nodes, "seed")
            if node not in activated:
                activated.add(node)
                frontier.append(node)
        graph = self.graph
        while frontier:
            node = frontier.pop()
            start, stop = graph.out_offsets[node], graph.out_offsets[node + 1]
            live = np.flatnonzero(mask[start:stop])
            for offset in live:
                target = int(graph.out_targets[start + offset])
                if target not in activated:
                    activated.add(target)
                    frontier.append(target)
        return activated

    def reaches(
        self, source: int, target: int, edge_probabilities: np.ndarray
    ) -> bool:
        """Whether *source* reaches *target* over live edges."""
        check_node_id(source, self.graph.num_nodes, "source")
        check_node_id(target, self.graph.num_nodes, "target")
        if source == target:
            return True
        return target in self.reachable_from([source], edge_probabilities)


class WorldEnsemble:
    """A reproducible collection of live-edge worlds.

    Spread estimates over the ensemble are deterministic for a fixed seed,
    which the lazy-greedy keyword search requires: comparing keyword sets on
    the *same* worlds removes sampling noise from the comparison.
    """

    def __init__(self, graph: SocialGraph, num_worlds: int, seed: SeedLike = None):
        check_positive(num_worlds, "num_worlds")
        rng = as_generator(seed)
        self.graph = graph
        self.worlds: List[LiveEdgeWorld] = [
            LiveEdgeWorld.sample(graph, rng) for _ in range(num_worlds)
        ]

    def __len__(self) -> int:
        return len(self.worlds)

    def __iter__(self):
        return iter(self.worlds)

    def estimate_spread(
        self, seeds: Sequence[int], edge_probabilities: np.ndarray
    ) -> float:
        """Average reachable-set size across the ensemble (unbiased σ)."""
        total = 0
        for world in self.worlds:
            total += len(world.reachable_from(seeds, edge_probabilities))
        return total / len(self.worlds)

/* Compiled core of the "native" RR-sampling kernel and the greedy
 * cover-update inner loop.
 *
 * Contract with repro.propagation.native (the loader + pure-Python twin):
 *
 * - sample_chunk() consumes coins from a splitmix64 stream seeded by the
 *   caller, one coin per gathered in-edge per BFS level, iterating the
 *   frontier in ascending node order and each node's in-CSR slice in
 *   order.  The Python fallback consumes the *same* stream in the *same*
 *   order, so the two paths are draw-for-draw identical — whichever one
 *   runs, a fixed seed produces the same packed bytes.
 * - cover_update() performs the exact integer arithmetic of the NumPy
 *   cover-update step (mark uncovered member sets covered, decrement the
 *   coverage count of every member of each newly covered set), so greedy
 *   argmax/tie-break sequences are unchanged whether or not this
 *   extension is loaded.
 *
 * Everything speaks the stable CPython buffer protocol — no NumPy C API,
 * no ABI coupling; the wrapper hands in contiguous int64/float64/uint8
 * arrays and re-wraps the returned bytearrays with np.frombuffer.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* splitmix64 — the shared coin stream                                  */
/* ------------------------------------------------------------------ */

#define SPLITMIX_GAMMA 0x9E3779B97F4A7C15ULL

static inline uint64_t
splitmix64_next(uint64_t *state)
{
    uint64_t z = (*state += SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/* 53-bit mantissa → double in [0, 1); bit-identical to the NumPy twin's
 * (z >> 11) * 2**-53. */
static inline double
splitmix64_double(uint64_t *state)
{
    return (double)(splitmix64_next(state) >> 11) * (1.0 / 9007199254740992.0);
}

/* ------------------------------------------------------------------ */
/* Small helpers                                                        */
/* ------------------------------------------------------------------ */

static int
int64_compare(const void *left, const void *right)
{
    const int64_t a = *(const int64_t *)left;
    const int64_t b = *(const int64_t *)right;
    return (a > b) - (a < b);
}

/* Growable int64 output buffer (the packed `nodes` array under
 * construction). */
typedef struct {
    int64_t *data;
    Py_ssize_t size;
    Py_ssize_t capacity;
} i64buf;

static int
i64buf_init(i64buf *buf, Py_ssize_t capacity)
{
    if (capacity < 16)
        capacity = 16;
    buf->data = (int64_t *)malloc((size_t)capacity * sizeof(int64_t));
    buf->size = 0;
    buf->capacity = capacity;
    return buf->data != NULL;
}

static int
i64buf_reserve(i64buf *buf, Py_ssize_t extra)
{
    if (buf->size + extra <= buf->capacity)
        return 1;
    Py_ssize_t capacity = buf->capacity;
    while (buf->size + extra > capacity)
        capacity *= 2;
    int64_t *grown = (int64_t *)realloc(buf->data, (size_t)capacity * sizeof(int64_t));
    if (grown == NULL)
        return 0;
    buf->data = grown;
    buf->capacity = capacity;
    return 1;
}

/* ------------------------------------------------------------------ */
/* sample_chunk                                                         */
/* ------------------------------------------------------------------ */

static const char sample_chunk_doc[] =
    "sample_chunk(num_nodes, in_offsets, in_sources, in_edge_ids, "
    "edge_probabilities, roots, seed) -> (nodes_bytes, offsets_bytes)\n\n"
    "Sample one whole chunk of RR sets into packed (nodes, offsets) int64 "
    "buffers, drawing coins from a splitmix64 stream seeded with *seed*.";

static PyObject *
sample_chunk(PyObject *self, PyObject *args)
{
    Py_ssize_t num_nodes;
    Py_buffer in_offsets_buf, in_sources_buf, in_edge_ids_buf;
    Py_buffer probs_buf, roots_buf;
    unsigned long long seed;

    (void)self;
    if (!PyArg_ParseTuple(args, "ny*y*y*y*y*K",
                          &num_nodes, &in_offsets_buf, &in_sources_buf,
                          &in_edge_ids_buf, &probs_buf, &roots_buf, &seed))
        return NULL;

    const int64_t *in_offsets = (const int64_t *)in_offsets_buf.buf;
    const int64_t *in_sources = (const int64_t *)in_sources_buf.buf;
    const int64_t *in_edge_ids = (const int64_t *)in_edge_ids_buf.buf;
    const double *probs = (const double *)probs_buf.buf;
    const int64_t *roots = (const int64_t *)roots_buf.buf;
    const Py_ssize_t count = roots_buf.len / (Py_ssize_t)sizeof(int64_t);

    PyObject *result = NULL;
    uint8_t *visited = NULL;
    int64_t *frontier = NULL, *next = NULL, *offsets = NULL;
    i64buf out = {NULL, 0, 0};
    int failed = 0;

    if (num_nodes < 0 ||
        in_offsets_buf.len < (Py_ssize_t)((num_nodes + 1) * sizeof(int64_t))) {
        PyErr_SetString(PyExc_ValueError, "in_offsets shorter than num_nodes + 1");
        goto cleanup;
    }

    visited = (uint8_t *)calloc((size_t)(num_nodes > 0 ? num_nodes : 1), 1);
    frontier = (int64_t *)malloc((size_t)(num_nodes > 0 ? num_nodes : 1) * sizeof(int64_t));
    next = (int64_t *)malloc((size_t)(num_nodes > 0 ? num_nodes : 1) * sizeof(int64_t));
    offsets = (int64_t *)malloc((size_t)(count + 1) * sizeof(int64_t));
    if (visited == NULL || frontier == NULL || next == NULL || offsets == NULL ||
        !i64buf_init(&out, count * 4)) {
        PyErr_NoMemory();
        goto cleanup;
    }

    Py_BEGIN_ALLOW_THREADS
    uint64_t state = (uint64_t)seed;
    offsets[0] = 0;
    for (Py_ssize_t sample = 0; sample < count && !failed; sample++) {
        const int64_t root = roots[sample];
        const Py_ssize_t set_start = out.size;
        if (root < 0 || root >= (int64_t)num_nodes) {
            failed = 1;
            break;
        }
        visited[root] = 1;
        frontier[0] = root;
        Py_ssize_t frontier_size = 1;
        if (!i64buf_reserve(&out, 1)) {
            failed = 2;
            break;
        }
        out.data[out.size++] = root;
        while (frontier_size > 0) {
            Py_ssize_t next_size = 0;
            for (Py_ssize_t f = 0; f < frontier_size; f++) {
                const int64_t node = frontier[f];
                const int64_t start = in_offsets[node];
                const int64_t stop = in_offsets[node + 1];
                for (int64_t slot = start; slot < stop; slot++) {
                    const double coin = splitmix64_double(&state);
                    if (coin < probs[in_edge_ids[slot]]) {
                        const int64_t source = in_sources[slot];
                        if (!visited[source]) {
                            visited[source] = 1;
                            next[next_size++] = source;
                        }
                    }
                }
            }
            if (next_size == 0)
                break;
            /* The NumPy twin's np.unique(fresh): each level's new nodes,
             * ascending.  Dedup already happened via the visited marks. */
            qsort(next, (size_t)next_size, sizeof(int64_t), int64_compare);
            if (!i64buf_reserve(&out, next_size)) {
                failed = 2;
                break;
            }
            memcpy(out.data + out.size, next, (size_t)next_size * sizeof(int64_t));
            out.size += next_size;
            int64_t *swap = frontier;
            frontier = next;
            next = swap;
            frontier_size = next_size;
        }
        /* Clear only the touched entries — O(|RR set|), not O(n). */
        for (Py_ssize_t m = set_start; m < out.size; m++)
            visited[out.data[m]] = 0;
        offsets[sample + 1] = (int64_t)out.size;
    }
    Py_END_ALLOW_THREADS

    if (failed == 1) {
        PyErr_SetString(PyExc_ValueError, "root out of range");
        goto cleanup;
    }
    if (failed == 2) {
        PyErr_NoMemory();
        goto cleanup;
    }

    {
        PyObject *nodes_bytes = PyByteArray_FromStringAndSize(
            (const char *)out.data, out.size * (Py_ssize_t)sizeof(int64_t));
        PyObject *offsets_bytes = PyByteArray_FromStringAndSize(
            (const char *)offsets, (count + 1) * (Py_ssize_t)sizeof(int64_t));
        if (nodes_bytes != NULL && offsets_bytes != NULL)
            result = PyTuple_Pack(2, nodes_bytes, offsets_bytes);
        Py_XDECREF(nodes_bytes);
        Py_XDECREF(offsets_bytes);
    }

cleanup:
    free(visited);
    free(frontier);
    free(next);
    free(offsets);
    free(out.data);
    PyBuffer_Release(&in_offsets_buf);
    PyBuffer_Release(&in_sources_buf);
    PyBuffer_Release(&in_edge_ids_buf);
    PyBuffer_Release(&probs_buf);
    PyBuffer_Release(&roots_buf);
    return result;
}

/* ------------------------------------------------------------------ */
/* cover_update                                                         */
/* ------------------------------------------------------------------ */

static const char cover_update_doc[] =
    "cover_update(seed_node, member_offsets, member_sets, covered, "
    "set_offsets, set_nodes, coverage) -> newly_covered\n\n"
    "In-place greedy cover update: mark the seed node's not-yet-covered "
    "RR sets covered and decrement the coverage count of each of their "
    "members.  Exact integer arithmetic of the NumPy update step.";

static PyObject *
cover_update(PyObject *self, PyObject *args)
{
    Py_ssize_t seed_node;
    Py_buffer member_offsets_buf, member_sets_buf, covered_buf;
    Py_buffer set_offsets_buf, set_nodes_buf, coverage_buf;

    (void)self;
    if (!PyArg_ParseTuple(args, "ny*y*w*y*y*w*",
                          &seed_node, &member_offsets_buf, &member_sets_buf,
                          &covered_buf, &set_offsets_buf, &set_nodes_buf,
                          &coverage_buf))
        return NULL;

    const int64_t *member_offsets = (const int64_t *)member_offsets_buf.buf;
    const int64_t *member_sets = (const int64_t *)member_sets_buf.buf;
    uint8_t *covered = (uint8_t *)covered_buf.buf;
    const int64_t *set_offsets = (const int64_t *)set_offsets_buf.buf;
    const int64_t *set_nodes = (const int64_t *)set_nodes_buf.buf;
    int64_t *coverage = (int64_t *)coverage_buf.buf;

    int64_t newly_covered = 0;
    const int64_t first = member_offsets[seed_node];
    const int64_t last = member_offsets[seed_node + 1];

    Py_BEGIN_ALLOW_THREADS
    for (int64_t slot = first; slot < last; slot++) {
        const int64_t set_id = member_sets[slot];
        if (covered[set_id])
            continue;
        covered[set_id] = 1;
        newly_covered++;
        const int64_t stop = set_offsets[set_id + 1];
        for (int64_t member = set_offsets[set_id]; member < stop; member++)
            coverage[set_nodes[member]] -= 1;
    }
    Py_END_ALLOW_THREADS

    PyBuffer_Release(&member_offsets_buf);
    PyBuffer_Release(&member_sets_buf);
    PyBuffer_Release(&covered_buf);
    PyBuffer_Release(&set_offsets_buf);
    PyBuffer_Release(&set_nodes_buf);
    PyBuffer_Release(&coverage_buf);
    return PyLong_FromLongLong((long long)newly_covered);
}

/* ------------------------------------------------------------------ */
/* Module plumbing                                                      */
/* ------------------------------------------------------------------ */

static PyMethodDef rrnative_methods[] = {
    {"sample_chunk", sample_chunk, METH_VARARGS, sample_chunk_doc},
    {"cover_update", cover_update, METH_VARARGS, cover_update_doc},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef rrnative_module = {
    PyModuleDef_HEAD_INIT,
    "repro.propagation._rrnative",
    "Compiled RR-sampling and greedy cover-update cores.",
    -1,
    rrnative_methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__rrnative(void)
{
    return PyModule_Create(&rrnative_module);
}

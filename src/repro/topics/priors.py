"""Topic-distribution priors and geometry helpers.

The topic-sample index (Section II-C) precomputes seed sets for
"offline-sampled topic distributions"; :func:`sample_topic_distributions`
draws those samples from a Dirichlet prior, and :func:`l1_distance` provides
the metric used to relate an online query's distribution to the samples.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_simplex

__all__ = [
    "uniform_distribution",
    "one_hot_distribution",
    "sample_topic_distributions",
    "l1_distance",
    "normalize_distribution",
]


def uniform_distribution(num_topics: int) -> np.ndarray:
    """The uniform distribution over *num_topics* topics."""
    check_positive(num_topics, "num_topics")
    return np.full(num_topics, 1.0 / num_topics, dtype=np.float64)


def one_hot_distribution(num_topics: int, topic: int) -> np.ndarray:
    """Distribution concentrated on a single *topic*."""
    check_positive(num_topics, "num_topics")
    if not 0 <= topic < num_topics:
        raise ValueError(f"topic must be in [0, {num_topics}), got {topic}")
    gamma = np.zeros(num_topics, dtype=np.float64)
    gamma[topic] = 1.0
    return gamma


def sample_topic_distributions(
    num_topics: int,
    count: int,
    concentration: float = 0.3,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw *count* topic distributions from ``Dirichlet(concentration)``.

    A concentration below 1 yields sparse distributions, matching real
    keyword queries which load on one or two topics.  Returns an array of
    shape ``(count, num_topics)``; every row lies on the simplex.
    """
    check_positive(num_topics, "num_topics")
    check_positive(count, "count")
    check_positive(concentration, "concentration")
    rng = as_generator(seed)
    samples = rng.dirichlet(np.full(num_topics, concentration), size=count)
    # Guard against exact zero rows caused by underflow for tiny alphas.
    samples = np.maximum(samples, 1e-12)
    return samples / samples.sum(axis=1, keepdims=True)


def l1_distance(gamma_a: np.ndarray, gamma_b: np.ndarray) -> float:
    """L1 distance between two topic distributions.

    This is the metric behind the topic-sample bounds: influence spread is
    Lipschitz in the L1 distance between distributions (the per-edge
    probability changes by at most ``max_z pp^z`` times half this distance).
    """
    a = check_simplex(gamma_a, "gamma_a")
    b = check_simplex(gamma_b, "gamma_b")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum())


def normalize_distribution(weights: np.ndarray) -> np.ndarray:
    """Normalise non-negative *weights* onto the simplex.

    An all-zero vector normalises to the uniform distribution.
    """
    array = np.asarray(weights, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"weights must be 1-d, got shape {array.shape}")
    if np.any(array < 0):
        raise ValueError("weights must be non-negative")
    total = array.sum()
    if total <= 0.0:
        return uniform_distribution(array.size)
    return array / total

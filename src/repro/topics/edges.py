"""Per-edge topic-dependent activation probabilities ``pp^z_{u,v}``.

The core data structure of the topic-aware IC model: an ``(m × Z)`` array
aligned with the graph's edge ids.  A query's topic distribution γ collapses
it to scalar per-edge probabilities via ``pp_e(γ) = Σ_z pp^z_e γ_z`` — one
mat-vec.  The naive online-IM baseline pays exactly this collapse plus a full
IM run per query; the online algorithms avoid touching the full matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    ValidationError,
    check_array_shape,
    check_in_range,
    check_positive,
    check_simplex,
)

__all__ = ["TopicEdgeWeights"]


class TopicEdgeWeights:
    """Topic-dependent activation probabilities for every edge of a graph."""

    def __init__(self, graph: SocialGraph, weights: np.ndarray) -> None:
        matrix = np.asarray(weights, dtype=np.float64)
        check_array_shape(matrix, (graph.num_edges, None), "weights")
        if matrix.shape[1] < 1:
            raise ValidationError("weights must have >= 1 topic column")
        if np.any(matrix < 0.0) or np.any(matrix > 1.0):
            raise ValidationError("edge probabilities must lie in [0, 1]")
        self.graph = graph
        self.weights = matrix
        self.weights.setflags(write=False)
        self.num_topics = matrix.shape[1]
        self._max_over_topics: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Query-time collapse
    # ------------------------------------------------------------------

    def edge_probabilities(self, gamma: np.ndarray) -> np.ndarray:
        """Per-edge probability under topic distribution γ (``W @ γ``)."""
        gamma = check_simplex(gamma, "gamma")
        if gamma.size != self.num_topics:
            raise ValidationError(
                f"gamma has {gamma.size} entries for {self.num_topics} topics"
            )
        return self.weights @ gamma

    def edge_probability(self, edge_id: int, gamma: np.ndarray) -> float:
        """Probability of a single edge under γ."""
        if not 0 <= edge_id < self.graph.num_edges:
            raise ValidationError(
                f"edge_id must be in [0, {self.graph.num_edges}), got {edge_id}"
            )
        gamma = check_simplex(gamma, "gamma")
        return float(self.weights[edge_id] @ gamma)

    def topic_column(self, topic: int) -> np.ndarray:
        """All edges' probabilities on a single *topic* (read-only view)."""
        if not 0 <= topic < self.num_topics:
            raise ValidationError(
                f"topic must be in [0, {self.num_topics}), got {topic}"
            )
        return self.weights[:, topic]

    def max_over_topics(self) -> np.ndarray:
        """``max_z pp^z_e`` per edge — the universal upper envelope.

        No topic distribution can make an edge more probable than this, so
        it powers permanent pruning in the influencer index and the
        neighborhood bounds.  Cached after the first call.
        """
        if self._max_over_topics is None:
            self._max_over_topics = self.weights.max(axis=1)
            self._max_over_topics.setflags(write=False)
        return self._max_over_topics

    # ------------------------------------------------------------------
    # Constructors for synthetic models
    # ------------------------------------------------------------------

    @classmethod
    def random_trivalency(
        cls,
        graph: SocialGraph,
        num_topics: int,
        levels: tuple = (0.1, 0.01, 0.001),
        seed: SeedLike = None,
    ) -> "TopicEdgeWeights":
        """Trivalency model per topic: each ``pp^z_e`` uniform over *levels*."""
        check_positive(num_topics, "num_topics")
        rng = as_generator(seed)
        choices = np.asarray(levels, dtype=np.float64)
        if np.any(choices < 0) or np.any(choices > 1):
            raise ValidationError("levels must be probabilities in [0, 1]")
        weights = choices[
            rng.integers(0, len(choices), size=(graph.num_edges, num_topics))
        ]
        return cls(graph, weights)

    @classmethod
    def weighted_cascade(
        cls,
        graph: SocialGraph,
        num_topics: int,
        topic_sharpness: float = 2.0,
        seed: SeedLike = None,
    ) -> "TopicEdgeWeights":
        """Weighted-cascade base (``1/in_degree(v)``) modulated per topic.

        Each edge draws a Dirichlet topic profile (sharpness < 1 ⇒ edges are
        topical, concentrating probability on few topics) and scales the
        weighted-cascade base probability so that the *average* over topics
        equals the base — preserving the classical model in expectation.
        """
        check_positive(num_topics, "num_topics")
        check_positive(topic_sharpness, "topic_sharpness")
        rng = as_generator(seed)
        in_degree = graph.in_degree().astype(np.float64)
        base = np.zeros(graph.num_edges, dtype=np.float64)
        for edge_id, _source, target in graph.edges():
            base[edge_id] = 1.0 / max(in_degree[target], 1.0)
        profile = rng.dirichlet(
            np.full(num_topics, topic_sharpness), size=graph.num_edges
        )
        weights = np.minimum(base[:, None] * profile * num_topics, 1.0)
        return cls(graph, weights)

    @classmethod
    def from_node_affinities(
        cls,
        graph: SocialGraph,
        node_affinities: np.ndarray,
        base_probability: float = 0.2,
        seed: SeedLike = None,
        noise: float = 0.05,
    ) -> "TopicEdgeWeights":
        """Ground-truth construction used by the dataset generators.

        ``pp^z_{u,v} = base · sqrt(affinity_u[z] · affinity_v[z]) + ε`` — an
        edge carries influence on a topic only when *both* endpoints care
        about the topic, which is what makes keyword queries discriminative.
        """
        affinities = np.asarray(node_affinities, dtype=np.float64)
        check_array_shape(affinities, (graph.num_nodes, None), "node_affinities")
        check_in_range(base_probability, 0.0, 1.0, "base_probability")
        check_in_range(noise, 0.0, 1.0, "noise")
        rng = as_generator(seed)
        sources = graph.edge_sources()
        targets = graph.out_targets
        geometric = np.sqrt(affinities[sources] * affinities[targets])
        weights = base_probability * geometric
        if noise > 0.0:
            weights = weights + noise * rng.random(weights.shape) * base_probability
        return cls(graph, np.clip(weights, 0.0, 1.0))

    def __repr__(self) -> str:
        return (
            f"TopicEdgeWeights(num_edges={self.graph.num_edges}, "
            f"num_topics={self.num_topics})"
        )

"""Topic-aware influence modelling (paper Section II-B).

Contains the keyword vocabulary, the word-topic model ``p(w|z)`` with the
Bayesian keyword-to-topic-distribution inference, the per-edge topic
activation probabilities ``pp^z_{u,v}``, and the EM learner that fits both
from action logs (the TIC model of Barbieri et al., reference [2]).
"""

from repro.topics.edges import TopicEdgeWeights
from repro.topics.em import EMConfig, ItemObservation, PropagationEvent, TICLearner
from repro.topics.model import TopicModel
from repro.topics.priors import l1_distance, sample_topic_distributions, uniform_distribution
from repro.topics.vocabulary import Vocabulary

__all__ = [
    "TopicEdgeWeights",
    "EMConfig",
    "ItemObservation",
    "PropagationEvent",
    "TICLearner",
    "TopicModel",
    "Vocabulary",
    "sample_topic_distributions",
    "uniform_distribution",
    "l1_distance",
]

"""Word-topic model and keyword→topic-distribution inference.

Implements the usability layer of Section II-B: topics are latent, users type
keywords.  The model stores ``p(w|z)`` per topic plus a topic prior ``p(z)``
and derives, for a keyword set ``W``, the topic distribution

    γ_z = p(z | W) ∝ p(z) · Π_{w ∈ W} p(w|z)

(the "Bayesian formula" of [6]), computed in log space with additive
smoothing so unseen word-topic pairs never zero out a topic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import (
    ValidationError,
    check_array_shape,
    check_positive,
    check_simplex,
)

__all__ = ["TopicModel"]


class TopicModel:
    """Keyword–topic model: ``p(w|z)`` columns plus a topic prior ``p(z)``.

    Parameters
    ----------
    vocabulary:
        The keyword vocabulary; ids index the rows of *word_given_topic*.
    word_given_topic:
        Array of shape ``(V, Z)``; column ``z`` is the distribution
        ``p(w|z)`` and must sum to 1.
    topic_prior:
        Distribution ``p(z)`` of shape ``(Z,)``; defaults to uniform.
    smoothing:
        Additive smoothing mass applied during posterior inference so that a
        keyword with zero probability under some topic still leaves that
        topic a tiny posterior mass.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        word_given_topic: np.ndarray,
        topic_prior: Optional[np.ndarray] = None,
        smoothing: float = 1e-9,
    ) -> None:
        self.vocabulary = vocabulary
        matrix = np.asarray(word_given_topic, dtype=np.float64)
        check_array_shape(matrix, (len(vocabulary), None), "word_given_topic")
        if matrix.shape[1] < 1:
            raise ValidationError("word_given_topic must have >= 1 topic column")
        if np.any(matrix < 0):
            raise ValidationError("word_given_topic must be non-negative")
        column_sums = matrix.sum(axis=0)
        if len(vocabulary) > 0 and not np.allclose(column_sums, 1.0, atol=1e-6):
            raise ValidationError(
                "each p(w|z) column must sum to 1; got sums "
                f"{np.round(column_sums, 4)}"
            )
        self.word_given_topic = matrix
        self.num_topics = matrix.shape[1]
        if topic_prior is None:
            topic_prior = np.full(self.num_topics, 1.0 / self.num_topics)
        self.topic_prior = check_simplex(topic_prior, "topic_prior")
        if self.topic_prior.size != self.num_topics:
            raise ValidationError(
                f"topic_prior has {self.topic_prior.size} entries for "
                f"{self.num_topics} topics"
            )
        check_positive(smoothing, "smoothing")
        self.smoothing = float(smoothing)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def keyword_topic_posterior(
        self, keywords: Sequence[Union[str, int]]
    ) -> np.ndarray:
        """Topic distribution γ captured by a keyword set.

        Accepts keyword strings or word ids.  Unknown keywords raise
        :class:`ValidationError` (callers wanting lenient behaviour should
        filter via :meth:`Vocabulary.known_ids_of` first).
        """
        word_ids = self._resolve_ids(keywords)
        if not word_ids:
            raise ValidationError("keyword set must contain at least one keyword")
        log_posterior = np.log(self.topic_prior + self.smoothing)
        for word_id in word_ids:
            log_posterior = log_posterior + np.log(
                self.word_given_topic[word_id] + self.smoothing
            )
        log_posterior -= log_posterior.max()
        gamma = np.exp(log_posterior)
        return gamma / gamma.sum()

    def topic_profile_of_word(self, keyword: Union[str, int]) -> np.ndarray:
        """``p(z|w)`` for a single keyword — the radar-diagram series."""
        return self.keyword_topic_posterior([keyword])

    def word_likelihood(self, keywords: Sequence[Union[str, int]]) -> float:
        """Marginal likelihood ``p(W) = Σ_z p(z) Π_w p(w|z)`` of a keyword set."""
        word_ids = self._resolve_ids(keywords)
        per_topic = self.topic_prior.copy()
        for word_id in word_ids:
            per_topic = per_topic * (self.word_given_topic[word_id] + self.smoothing)
        return float(per_topic.sum())

    def _resolve_ids(self, keywords: Sequence[Union[str, int]]) -> List[int]:
        word_ids: List[int] = []
        for keyword in keywords:
            if isinstance(keyword, str):
                word_ids.append(self.vocabulary.id_of(keyword))
            elif isinstance(keyword, (int, np.integer)) and not isinstance(
                keyword, bool
            ):
                word_id = int(keyword)
                if not 0 <= word_id < len(self.vocabulary):
                    raise ValidationError(
                        f"word id {word_id} out of range [0, {len(self.vocabulary)})"
                    )
                word_ids.append(word_id)
            else:
                raise ValidationError(
                    f"keyword must be a string or word id, got {keyword!r}"
                )
        return word_ids

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def top_words(self, topic: int, k: int = 10) -> List[Tuple[str, float]]:
        """The *k* highest-probability keywords of *topic*."""
        if not 0 <= topic < self.num_topics:
            raise ValidationError(
                f"topic must be in [0, {self.num_topics}), got {topic}"
            )
        check_positive(k, "k")
        column = self.word_given_topic[:, topic]
        k = min(k, len(self.vocabulary))
        order = np.argsort(-column, kind="stable")[:k]
        return [
            (self.vocabulary.word_of(int(word_id)), float(column[word_id]))
            for word_id in order
        ]

    def dominant_topic(self, keywords: Sequence[Union[str, int]]) -> int:
        """The most likely topic of a keyword set."""
        return int(np.argmax(self.keyword_topic_posterior(keywords)))

    def __repr__(self) -> str:
        return (
            f"TopicModel(vocabulary_size={len(self.vocabulary)}, "
            f"num_topics={self.num_topics})"
        )

"""Keyword vocabulary: the bridge between end-user queries and topics.

OCTOPUS's usability claim rests on users typing keywords rather than latent
topic vectors; the vocabulary maps keyword strings to dense integer ids used
throughout the topic model, the inverted index, and the auto-completion trie.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.utils.validation import ValidationError

__all__ = ["Vocabulary"]


class Vocabulary:
    """Bidirectional keyword ↔ id mapping with occurrence counts.

    Words are normalised to lower-case, stripped form; empty strings are
    rejected.  Ids are dense and assigned in first-seen order, so a frozen
    vocabulary is fully reproducible from the same corpus.
    """

    def __init__(self, words: Optional[Iterable[str]] = None) -> None:
        self._words: List[str] = []
        self._ids: Dict[str, int] = {}
        self._counts: List[int] = []
        self._frozen = False
        if words is not None:
            for word in words:
                self.add(word)

    @staticmethod
    def normalize(word: str) -> str:
        """Canonical form of *word* (lower-case, surrounding space removed)."""
        if not isinstance(word, str):
            raise ValidationError(f"keyword must be a string, got {word!r}")
        normalized = word.strip().lower()
        if not normalized:
            raise ValidationError(f"keyword {word!r} is empty after normalisation")
        return normalized

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        try:
            return self.normalize(word) in self._ids
        except ValidationError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self._words)

    def freeze(self) -> "Vocabulary":
        """Disallow further additions; lookups of unknown words then raise."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether the vocabulary rejects new words."""
        return self._frozen

    def add(self, word: str, count: int = 1) -> int:
        """Register an occurrence of *word* and return its id."""
        normalized = self.normalize(word)
        if normalized in self._ids:
            word_id = self._ids[normalized]
            self._counts[word_id] += count
            return word_id
        if self._frozen:
            raise ValidationError(
                f"vocabulary is frozen; unknown keyword {normalized!r}"
            )
        word_id = len(self._words)
        self._ids[normalized] = word_id
        self._words.append(normalized)
        self._counts.append(count)
        return word_id

    def add_document(self, words: Sequence[str]) -> List[int]:
        """Register every word of a document, returning their ids in order."""
        return [self.add(word) for word in words]

    def id_of(self, word: str) -> int:
        """Id of *word*; raises :class:`ValidationError` when unknown."""
        normalized = self.normalize(word)
        if normalized not in self._ids:
            raise ValidationError(f"unknown keyword {normalized!r}")
        return self._ids[normalized]

    def word_of(self, word_id: int) -> str:
        """Word carrying *word_id*."""
        if not 0 <= word_id < len(self._words):
            raise ValidationError(
                f"word id must be in [0, {len(self._words)}), got {word_id}"
            )
        return self._words[word_id]

    def count_of(self, word: str) -> int:
        """Total registered occurrences of *word* (0 when unknown)."""
        try:
            return self._counts[self.id_of(word)]
        except ValidationError:
            return 0

    def ids_of(self, words: Sequence[str]) -> List[int]:
        """Ids of known *words*; unknown words raise."""
        return [self.id_of(word) for word in words]

    def known_ids_of(self, words: Sequence[str]) -> List[int]:
        """Ids of the subset of *words* present in the vocabulary."""
        ids = []
        for word in words:
            try:
                ids.append(self.id_of(word))
            except ValidationError:
                continue
        return ids

    def words(self) -> List[str]:
        """All words in id order (copy)."""
        return list(self._words)

    def counts(self) -> List[int]:
        """Occurrence count per word id (copy)."""
        return list(self._counts)

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)}, frozen={self._frozen})"

"""EM learning of the topic-aware IC model from action logs.

Reproduces the learning substrate of Section II-B: "Given a set of such
items, we can jointly learn pp^z_{u,v} and p(w|z) using the
Expectation-Maximization algorithm in [2]" (Barbieri, Bonchi, Manco, ICDM
2012).

Generative model (single latent topic per propagated item, the tractable
special case of [2]'s mixture):

* item ``i`` draws topic ``z_i ~ π``;
* each keyword of the item draws ``w ~ p(w | z_i)``;
* for each *exposure* of user ``v`` to the item via in-neighbour ``u``, the
  activation succeeds with probability ``pp^{z_i}_{u,v}``.

The E-step computes topic responsibilities per item from both evidence
channels (keywords and activation outcomes); the M-step re-estimates ``π``,
``p(w|z)`` and ``pp^z`` from expected counts with additive smoothing.  The
observed-data log-likelihood is non-decreasing across iterations — a property
the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = ["PropagationEvent", "ItemObservation", "EMConfig", "TICLearner", "TICResult"]

_LOGGER = get_logger("topics.em")


@dataclass(frozen=True)
class PropagationEvent:
    """One exposure of *target* to an item via *source*.

    ``activated`` records whether the exposure led to an activation (e.g. a
    citing paper / a forwarded URL) or demonstrably failed (the target saw
    the item and did not act).
    """

    source: int
    target: int
    activated: bool


@dataclass(frozen=True)
class ItemObservation:
    """A propagated item: its keywords plus its propagation events.

    In the ACMCite construction an item is a paper, ``keywords`` are the
    title words, an activated event is a citation from a reader, and failed
    events are sampled non-citing readers.
    """

    keywords: Tuple[int, ...]
    events: Tuple[PropagationEvent, ...]

    @staticmethod
    def create(
        keywords: Sequence[int], events: Sequence[PropagationEvent]
    ) -> "ItemObservation":
        """Build an observation from plain sequences."""
        return ItemObservation(tuple(int(w) for w in keywords), tuple(events))


@dataclass
class EMConfig:
    """Hyper-parameters of the EM fit."""

    num_topics: int = 8
    max_iterations: int = 50
    tolerance: float = 1e-5
    word_smoothing: float = 0.01
    edge_smoothing: float = 0.1
    edge_prior: float = 0.05
    seed: SeedLike = None

    def __post_init__(self) -> None:
        check_positive(self.num_topics, "num_topics")
        check_positive(self.max_iterations, "max_iterations")
        check_positive(self.tolerance, "tolerance")
        check_positive(self.word_smoothing, "word_smoothing")
        check_positive(self.edge_smoothing, "edge_smoothing")


@dataclass
class TICResult:
    """Outcome of :meth:`TICLearner.fit`."""

    topic_model: TopicModel
    edge_weights: TopicEdgeWeights
    topic_prior: np.ndarray
    log_likelihoods: List[float] = field(default_factory=list)
    responsibilities: Optional[np.ndarray] = None

    @property
    def iterations(self) -> int:
        """Number of EM iterations actually run."""
        return len(self.log_likelihoods)


class TICLearner:
    """Fits the topic-aware IC model from item observations."""

    def __init__(
        self,
        graph: SocialGraph,
        vocabulary: Vocabulary,
        config: Optional[EMConfig] = None,
    ) -> None:
        self.graph = graph
        self.vocabulary = vocabulary
        self.config = config or EMConfig()

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, items: Sequence[ItemObservation]) -> TICResult:
        """Run EM on *items* and return the fitted model.

        Raises :class:`ValidationError` on an empty corpus or on events that
        reference non-existent edges.
        """
        if not items:
            raise ValidationError("cannot fit on an empty item corpus")
        num_topics = self.config.num_topics
        vocab_size = len(self.vocabulary)
        if vocab_size == 0:
            raise ValidationError("vocabulary is empty")
        rng = as_generator(self.config.seed)

        item_words, item_word_counts = self._compile_words(items)
        item_edges, item_outcomes, edge_index = self._compile_events(items)

        num_items = len(items)
        num_used_edges = len(edge_index)

        # Random soft initialisation of responsibilities.
        responsibilities = rng.dirichlet(
            np.ones(num_topics), size=num_items
        )

        word_given_topic = np.full(
            (vocab_size, num_topics), 1.0 / vocab_size, dtype=np.float64
        )
        edge_prob = np.full(
            (num_used_edges, num_topics), self.config.edge_prior, dtype=np.float64
        )
        topic_prior = np.full(num_topics, 1.0 / num_topics, dtype=np.float64)

        log_likelihoods: List[float] = []
        for iteration in range(self.config.max_iterations):
            word_given_topic, edge_prob, topic_prior = self._m_step(
                responsibilities,
                item_words,
                item_word_counts,
                item_edges,
                item_outcomes,
                num_used_edges,
                vocab_size,
            )
            responsibilities, log_likelihood = self._e_step(
                word_given_topic,
                edge_prob,
                topic_prior,
                item_words,
                item_word_counts,
                item_edges,
                item_outcomes,
            )
            log_likelihoods.append(log_likelihood)
            if iteration > 0:
                improvement = log_likelihoods[-1] - log_likelihoods[-2]
                if abs(improvement) < self.config.tolerance * max(
                    1.0, abs(log_likelihoods[-2])
                ):
                    break
        _LOGGER.debug(
            "EM converged after %d iterations (final ll=%.4f)",
            len(log_likelihoods),
            log_likelihoods[-1],
        )

        full_edge_prob = self._expand_edge_probabilities(edge_prob, edge_index)
        topic_model = TopicModel(
            self.vocabulary, word_given_topic, topic_prior=topic_prior
        )
        edge_weights = TopicEdgeWeights(self.graph, full_edge_prob)
        return TICResult(
            topic_model=topic_model,
            edge_weights=edge_weights,
            topic_prior=topic_prior,
            log_likelihoods=log_likelihoods,
            responsibilities=responsibilities,
        )

    # ------------------------------------------------------------------
    # Corpus compilation
    # ------------------------------------------------------------------

    def _compile_words(
        self, items: Sequence[ItemObservation]
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Per item: unique word ids and their multiplicities."""
        item_words: List[np.ndarray] = []
        item_word_counts: List[np.ndarray] = []
        vocab_size = len(self.vocabulary)
        for index, item in enumerate(items):
            if not item.keywords:
                raise ValidationError(f"item {index} has no keywords")
            words = np.asarray(item.keywords, dtype=np.int64)
            if words.min() < 0 or words.max() >= vocab_size:
                raise ValidationError(
                    f"item {index} references word ids outside the vocabulary"
                )
            unique, counts = np.unique(words, return_counts=True)
            item_words.append(unique)
            item_word_counts.append(counts.astype(np.float64))
        return item_words, item_word_counts

    def _compile_events(
        self, items: Sequence[ItemObservation]
    ) -> Tuple[List[np.ndarray], List[np.ndarray], Dict[int, int]]:
        """Map events to dense indices over the set of edges that appear."""
        edge_index: Dict[int, int] = {}
        item_edges: List[np.ndarray] = []
        item_outcomes: List[np.ndarray] = []
        for index, item in enumerate(items):
            edges = np.empty(len(item.events), dtype=np.int64)
            outcomes = np.empty(len(item.events), dtype=np.float64)
            for position, event in enumerate(item.events):
                try:
                    edge_id = self.graph.edge_id(event.source, event.target)
                except ValidationError as error:
                    raise ValidationError(
                        f"item {index} event {position}: {error}"
                    ) from error
                dense = edge_index.setdefault(edge_id, len(edge_index))
                edges[position] = dense
                outcomes[position] = 1.0 if event.activated else 0.0
            item_edges.append(edges)
            item_outcomes.append(outcomes)
        return item_edges, item_outcomes, edge_index

    # ------------------------------------------------------------------
    # EM steps
    # ------------------------------------------------------------------

    def _e_step(
        self,
        word_given_topic: np.ndarray,
        edge_prob: np.ndarray,
        topic_prior: np.ndarray,
        item_words: List[np.ndarray],
        item_word_counts: List[np.ndarray],
        item_edges: List[np.ndarray],
        item_outcomes: List[np.ndarray],
    ) -> Tuple[np.ndarray, float]:
        num_items = len(item_words)
        num_topics = word_given_topic.shape[1]
        responsibilities = np.empty((num_items, num_topics), dtype=np.float64)
        total_log_likelihood = 0.0
        tiny = 1e-300
        log_word = np.log(word_given_topic + tiny)
        log_edge = np.log(edge_prob + tiny)
        log_not_edge = np.log1p(-np.clip(edge_prob, 0.0, 1.0 - 1e-12))
        log_prior = np.log(topic_prior + tiny)
        for index in range(num_items):
            log_post = log_prior.copy()
            words = item_words[index]
            counts = item_word_counts[index]
            log_post = log_post + (counts[:, None] * log_word[words]).sum(axis=0)
            edges = item_edges[index]
            if len(edges) > 0:
                outcomes = item_outcomes[index]
                success = outcomes[:, None] * log_edge[edges]
                failure = (1.0 - outcomes)[:, None] * log_not_edge[edges]
                log_post = log_post + (success + failure).sum(axis=0)
            peak = log_post.max()
            unnormalised = np.exp(log_post - peak)
            normaliser = unnormalised.sum()
            responsibilities[index] = unnormalised / normaliser
            total_log_likelihood += peak + float(np.log(normaliser))
        return responsibilities, total_log_likelihood

    def _m_step(
        self,
        responsibilities: np.ndarray,
        item_words: List[np.ndarray],
        item_word_counts: List[np.ndarray],
        item_edges: List[np.ndarray],
        item_outcomes: List[np.ndarray],
        num_used_edges: int,
        vocab_size: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        num_items, num_topics = responsibilities.shape
        word_counts = np.full(
            (vocab_size, num_topics), self.config.word_smoothing, dtype=np.float64
        )
        success_counts = np.full(
            (num_used_edges, num_topics),
            self.config.edge_smoothing * self.config.edge_prior,
            dtype=np.float64,
        )
        attempt_counts = np.full(
            (num_used_edges, num_topics), self.config.edge_smoothing, dtype=np.float64
        )
        for index in range(num_items):
            weight = responsibilities[index]
            words = item_words[index]
            counts = item_word_counts[index]
            word_counts[words] += counts[:, None] * weight[None, :]
            edges = item_edges[index]
            if len(edges) > 0:
                outcomes = item_outcomes[index]
                np.add.at(
                    success_counts, edges, outcomes[:, None] * weight[None, :]
                )
                np.add.at(
                    attempt_counts,
                    edges,
                    np.ones_like(outcomes)[:, None] * weight[None, :],
                )
        word_given_topic = word_counts / word_counts.sum(axis=0, keepdims=True)
        edge_prob = np.clip(success_counts / attempt_counts, 0.0, 1.0)
        topic_prior = responsibilities.sum(axis=0)
        topic_prior = topic_prior / topic_prior.sum()
        return word_given_topic, edge_prob, topic_prior

    def _expand_edge_probabilities(
        self, edge_prob: np.ndarray, edge_index: Dict[int, int]
    ) -> np.ndarray:
        """Scatter learned probabilities back to full edge-id order.

        Edges never observed in the log keep the prior probability on every
        topic — the model stays usable for propagation over the whole graph.
        """
        full = np.full(
            (self.graph.num_edges, self.config.num_topics),
            self.config.edge_prior,
            dtype=np.float64,
        )
        for edge_id, dense in edge_index.items():
            full[edge_id] = edge_prob[dense]
        return full

"""Radar-diagram data for keyword topic interpretation (Scenario 2).

"A radar diagram on the left bottom of OCTOPUS interface shows the
distribution over topics.  For example, 'EM algorithm' is very related to AI
and machine learning, while also relevant to multimedia and HCI."
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

from repro.topics.model import TopicModel
from repro.utils.validation import ValidationError

__all__ = ["radar_chart_data"]


def radar_chart_data(
    topic_model: TopicModel,
    keywords: Sequence[Union[str, int]],
    topic_names: Sequence[str],
) -> Dict[str, object]:
    """Radar payload: one axis per topic, one series for the keyword set.

    Returns ``{"axes": [...names...], "values": [...γ...], "dominant":
    name, "keywords": [...]}`` — the exact series a d3 radar chart binds.
    """
    if len(topic_names) != topic_model.num_topics:
        raise ValidationError(
            f"{len(topic_names)} topic names given for "
            f"{topic_model.num_topics} topics"
        )
    gamma = topic_model.keyword_topic_posterior(list(keywords))
    dominant = int(gamma.argmax())
    rendered_keywords = [
        keyword
        if isinstance(keyword, str)
        else topic_model.vocabulary.word_of(int(keyword))
        for keyword in keywords
    ]
    return {
        "axes": list(topic_names),
        "values": [float(value) for value in gamma],
        "dominant": topic_names[dominant],
        "keywords": rendered_keywords,
    }

"""ASCII rendering of path trees and radar data for terminal examples."""

from __future__ import annotations

from typing import Dict, List

from repro.core.paths import PathTree

__all__ = ["render_path_tree", "render_radar"]


def render_path_tree(
    tree: PathTree, *, max_depth: int = 4, max_children: int = 4
) -> str:
    """Indented text rendering of *tree*, best paths first.

    Children beyond *max_children* per node are summarised with an ellipsis
    line; depth is capped at *max_depth*.
    """
    children = tree.children()
    lines: List[str] = []
    arrow = "→" if tree.direction == "influences" else "←"
    lines.append(
        f"{tree.label_of(tree.root)} "
        f"[{tree.direction}, θ={tree.threshold:g}, {tree.size} nodes]"
    )

    def walk(node: int, depth: int) -> None:
        if depth > max_depth:
            return
        shown = children[node][:max_children]
        hidden = len(children[node]) - len(shown)
        for child in shown:
            probability = tree.probabilities[child]
            lines.append(
                f"{'  ' * depth}{arrow} {tree.label_of(child)} "
                f"(p={probability:.3f})"
            )
            walk(child, depth + 1)
        if hidden > 0:
            lines.append(f"{'  ' * depth}… {hidden} more")

    walk(tree.root, 1)
    return "\n".join(lines)


def render_radar(radar: Dict[str, object], *, width: int = 40) -> str:
    """Horizontal-bar rendering of a radar payload."""
    axes = radar["axes"]
    values = radar["values"]
    assert isinstance(axes, list) and isinstance(values, list)
    peak = max(values) if values else 1.0
    label_width = max(len(str(axis)) for axis in axes) if axes else 0
    lines = [f"keywords: {', '.join(map(str, radar.get('keywords', [])))}"]
    for axis, value in zip(axes, values):
        bar = "#" * int(round(width * (value / peak))) if peak > 0 else ""
        lines.append(f"{str(axis):<{label_width}} |{bar:<{width}}| {value:.3f}")
    lines.append(f"dominant topic: {radar.get('dominant')}")
    return "\n".join(lines)

"""d3js-compatible exports of influence path trees (§II-E).

Two payload shapes are provided, matching the two standard d3 idioms:

* :func:`path_tree_to_d3_force` — flat ``{"nodes": [...], "links": [...]}``
  for force-directed layouts; node ``size`` encodes the influence effect
  ("the size of each node represents the effect of the user on influence")
  and ``cluster`` the root-subtree membership of Scenario 3.
* :func:`path_tree_to_d3_hierarchy` — nested children dicts for
  ``d3.hierarchy`` / tree layouts.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.paths import PathTree

__all__ = ["path_tree_to_d3_force", "path_tree_to_d3_hierarchy"]


def path_tree_to_d3_force(
    tree: PathTree, *, size_scale: float = 30.0, min_size: float = 4.0
) -> Dict[str, List[Dict[str, Any]]]:
    """Force-layout payload: nodes sized by influence effect.

    The root is flagged ``root: true`` (the "big yellow node"); every other
    node's ``size`` scales with its best-path activation probability and
    ``cluster`` identifies which of the root's subtrees it belongs to.
    """
    clusters = tree.clusters()
    cluster_of: Dict[int, int] = {}
    for cluster_index, members in enumerate(clusters):
        for member in members:
            cluster_of[member] = cluster_index
    nodes = []
    for node in sorted(tree.parents):
        probability = tree.probabilities[node]
        nodes.append(
            {
                "id": node,
                "label": tree.label_of(node),
                "probability": probability,
                "size": max(min_size, probability * size_scale),
                "root": node == tree.root,
                "cluster": cluster_of.get(node, -1),
                "depth": tree.depth_of(node),
            }
        )
    links = []
    for node, parent in sorted(tree.parents.items()):
        if node == tree.root:
            continue
        # Render edges along the influence direction regardless of how the
        # arborescence was built.
        if tree.direction == "influences":
            source, target = parent, node
        else:
            source, target = node, parent
        links.append(
            {
                "source": source,
                "target": target,
                "probability": tree.probabilities[node],
            }
        )
    return {"nodes": nodes, "links": links}


def path_tree_to_d3_hierarchy(tree: PathTree) -> Dict[str, Any]:
    """Nested payload for ``d3.hierarchy``."""
    children = tree.children()

    def build(node: int) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": node,
            "name": tree.label_of(node),
            "probability": tree.probabilities[node],
            "subtree_size": tree.subtree_size(node),
        }
        child_nodes = children[node]
        if child_nodes:
            payload["children"] = [build(child) for child in child_nodes]
        return payload

    return build(tree.root)

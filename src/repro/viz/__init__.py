"""Visualisation payloads (the demo UI's data layer).

OCTOPUS "utilizes d3js to visualize the paths and interact with the
end-users"; this package produces exactly the JSON payloads such a front end
consumes (force-graph nodes/links, hierarchy trees, radar-diagram series)
plus an ASCII renderer for terminal examples.
"""

from repro.viz.d3 import path_tree_to_d3_force, path_tree_to_d3_hierarchy
from repro.viz.radar import radar_chart_data
from repro.viz.text import render_path_tree, render_radar

__all__ = [
    "path_tree_to_d3_force",
    "path_tree_to_d3_hierarchy",
    "radar_chart_data",
    "render_path_tree",
    "render_radar",
]

"""Online-serving utilities: workload generation and latency reporting.

The demo's third feature is "online influence analysis, which gratifies the
users with instant results"; this package provides the machinery to put a
built system under a realistic mixed query workload and report the latency
percentiles that claim rests on.
"""

from repro.engine.workload import (
    LatencyReport,
    QueryWorkload,
    WorkloadConfig,
    run_workload,
)

__all__ = ["QueryWorkload", "WorkloadConfig", "LatencyReport", "run_workload"]

"""Mixed query workloads and latency-percentile reporting.

Generates a realistic stream of OCTOPUS queries (keyword IM, keyword
suggestion, path exploration, auto-completion) with a configurable mix and
skew — end users repeat popular queries, which is what makes the result
cache matter — runs it against a built system, and reports per-service
latency percentiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.octopus import Octopus
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = ["WorkloadConfig", "QueryWorkload", "LatencyReport", "run_workload"]


@dataclass
class WorkloadConfig:
    """Shape of a generated workload.

    ``mix`` maps service name (``influencers`` / ``suggest`` / ``paths`` /
    ``complete``) to its relative frequency.  ``zipf_s`` controls query
    popularity skew (higher = more repetition, default mild skew); ``k``
    is the seed-set size of influencer queries.
    """

    num_queries: int = 100
    mix: Dict[str, float] = field(
        default_factory=lambda: {
            "influencers": 0.4,
            "suggest": 0.25,
            "paths": 0.25,
            "complete": 0.1,
        }
    )
    zipf_s: float = 1.2
    k: int = 5
    path_threshold: float = 0.02
    seed: SeedLike = None

    def __post_init__(self) -> None:
        check_positive(self.num_queries, "num_queries")
        check_positive(self.k, "k")
        if not self.mix:
            raise ValidationError("mix must not be empty")
        unknown = set(self.mix) - {"influencers", "suggest", "paths", "complete"}
        if unknown:
            raise ValidationError(f"unknown services in mix: {sorted(unknown)}")
        if any(value < 0 for value in self.mix.values()):
            raise ValidationError("mix frequencies must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ValidationError("mix must have positive total weight")


@dataclass
class QueryWorkload:
    """A concrete query stream: ``(service, argument)`` pairs."""

    queries: List[Tuple[str, object]]

    def __len__(self) -> int:
        return len(self.queries)

    @classmethod
    def generate(
        cls, system: Octopus, config: Optional[WorkloadConfig] = None
    ) -> "QueryWorkload":
        """Draw a workload against *system*'s vocabulary and users.

        Keyword pools come from the system's vocabulary, user pools from
        users that actually have recorded keywords (so suggestion queries
        are answerable); both are sampled with Zipf-like skew.
        """
        config = config or WorkloadConfig()
        rng = as_generator(config.seed)
        vocabulary = system.topic_model.vocabulary
        keywords = vocabulary.words()
        users = sorted(system.user_keywords)
        if not keywords or not users:
            raise ValidationError("system has no keywords or no active users")

        def zipf_choice(pool: Sequence, size: int) -> List:
            ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
            probabilities = ranks ** (-config.zipf_s)
            probabilities /= probabilities.sum()
            indices = rng.choice(len(pool), size=size, p=probabilities)
            return [pool[int(index)] for index in indices]

        services = list(config.mix)
        weights = np.array([config.mix[s] for s in services], dtype=np.float64)
        weights /= weights.sum()
        drawn_services = rng.choice(
            len(services), size=config.num_queries, p=weights
        )

        keyword_draws = zipf_choice(keywords, config.num_queries)
        user_draws = zipf_choice(users, config.num_queries)
        queries: List[Tuple[str, object]] = []
        for position, service_index in enumerate(drawn_services):
            service = services[int(service_index)]
            if service == "influencers":
                queries.append((service, keyword_draws[position]))
            elif service == "suggest":
                queries.append((service, user_draws[position]))
            elif service == "paths":
                queries.append((service, user_draws[position]))
            else:  # complete
                prefix = keyword_draws[position][:2]
                queries.append((service, prefix))
        return cls(queries)


@dataclass
class LatencyReport:
    """Latency percentiles per service, in milliseconds."""

    per_service: Dict[str, Dict[str, float]]
    total_queries: int
    cache_hit_rate: float
    wall_seconds: float

    def lines(self) -> List[str]:
        """Human-readable report."""
        rows = [
            f"{'service':<14s}{'count':>7s}{'p50':>9s}{'p95':>9s}"
            f"{'p99':>9s}{'max':>9s}"
        ]
        for service, stats in sorted(self.per_service.items()):
            rows.append(
                f"{service:<14s}{stats['count']:>7.0f}"
                f"{stats['p50_ms']:>9.2f}{stats['p95_ms']:>9.2f}"
                f"{stats['p99_ms']:>9.2f}{stats['max_ms']:>9.2f}"
            )
        rows.append(
            f"total {self.total_queries} queries in "
            f"{self.wall_seconds:.2f}s; cache hit rate "
            f"{100 * self.cache_hit_rate:.0f}%"
        )
        return rows


def run_workload(
    system: Octopus, workload: QueryWorkload
) -> LatencyReport:
    """Execute *workload* against *system* and collect latency percentiles.

    Individual query failures (e.g. a drawn user without enough keywords)
    are counted under ``errors`` rather than aborting the run — a serving
    system keeps going.
    """
    if len(workload) == 0:
        raise ValidationError("workload is empty")
    latencies: Dict[str, List[float]] = {}
    errors = 0
    started = time.perf_counter()
    for service, argument in workload.queries:
        began = time.perf_counter()
        try:
            if service == "influencers":
                system.find_influencers(argument, k=5)
            elif service == "suggest":
                system.suggest_keywords(argument, k=3)
            elif service == "paths":
                system.explore_paths(argument, threshold=0.02)
            elif service == "complete":
                system.autocomplete_keywords(argument, limit=10)
            else:
                raise ValidationError(f"unknown service {service!r}")
        except ValidationError:
            errors += 1
            continue
        latencies.setdefault(service, []).append(
            (time.perf_counter() - began) * 1e3
        )
    wall = time.perf_counter() - started

    per_service: Dict[str, Dict[str, float]] = {}
    for service, values in latencies.items():
        array = np.asarray(values)
        per_service[service] = {
            "count": float(len(array)),
            "p50_ms": float(np.percentile(array, 50)),
            "p95_ms": float(np.percentile(array, 95)),
            "p99_ms": float(np.percentile(array, 99)),
            "max_ms": float(array.max()),
            "mean_ms": float(array.mean()),
        }
    if errors:
        per_service["errors"] = {
            "count": float(errors),
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
            "mean_ms": 0.0,
        }
    return LatencyReport(
        per_service=per_service,
        total_queries=len(workload),
        cache_hit_rate=system._result_cache.hit_rate,
        wall_seconds=wall,
    )

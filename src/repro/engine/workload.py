"""Mixed query workloads and latency-percentile reporting.

Generates a realistic stream of OCTOPUS queries (keyword IM, keyword
suggestion, path exploration, auto-completion) as typed
:class:`~repro.service.requests.ServiceRequest` objects with a configurable
mix and skew — end users repeat popular queries, which is what makes the
service-layer result cache matter — dispatches it through an
:class:`~repro.service.OctopusService`, and reports per-service latency
percentiles plus the cache/metrics counters the service keeps for free.

Because workloads are request objects, they serialize: ``[r.to_dict() for r
in workload.queries]`` is a replayable JSON query log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.octopus import Octopus
from repro.service.concurrent import ConcurrentOctopusService
from repro.service.dispatcher import OctopusService
from repro.service.requests import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    ServiceRequest,
    SuggestKeywordsRequest,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = ["WorkloadConfig", "QueryWorkload", "LatencyReport", "run_workload"]


@dataclass
class WorkloadConfig:
    """Shape of a generated workload.

    ``mix`` maps service name (``influencers`` / ``suggest`` / ``paths`` /
    ``complete``) to its relative frequency.  ``zipf_s`` controls query
    popularity skew (higher = more repetition, default mild skew); ``k``
    is the seed-set size of influencer queries.
    """

    num_queries: int = 100
    mix: Dict[str, float] = field(
        default_factory=lambda: {
            "influencers": 0.4,
            "suggest": 0.25,
            "paths": 0.25,
            "complete": 0.1,
        }
    )
    zipf_s: float = 1.2
    k: int = 5
    path_threshold: float = 0.02
    seed: SeedLike = None

    def __post_init__(self) -> None:
        check_positive(self.num_queries, "num_queries")
        check_positive(self.k, "k")
        if not self.mix:
            raise ValidationError("mix must not be empty")
        unknown = set(self.mix) - {"influencers", "suggest", "paths", "complete"}
        if unknown:
            raise ValidationError(f"unknown services in mix: {sorted(unknown)}")
        if any(value < 0 for value in self.mix.values()):
            raise ValidationError("mix frequencies must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ValidationError("mix must have positive total weight")


@dataclass
class QueryWorkload:
    """A concrete query stream of typed service requests."""

    queries: List[ServiceRequest]

    def __len__(self) -> int:
        return len(self.queries)

    def to_dicts(self) -> List[Dict]:
        """The workload as a JSON-serializable query log."""
        return [request.to_dict() for request in self.queries]

    @classmethod
    def generate(
        cls,
        system: Union[Octopus, OctopusService, ConcurrentOctopusService],
        config: Optional[WorkloadConfig] = None,
    ) -> "QueryWorkload":
        """Draw a workload against *system*'s vocabulary and users.

        Keyword pools come from the system's vocabulary, user pools from
        users that actually have recorded keywords (so suggestion queries
        are answerable); both are sampled with Zipf-like skew.
        """
        config = config or WorkloadConfig()
        backend = (
            system.backend
            if isinstance(system, (OctopusService, ConcurrentOctopusService))
            else system
        )
        rng = as_generator(config.seed)
        vocabulary = backend.topic_model.vocabulary
        keywords = vocabulary.words()
        users = sorted(backend.user_keywords)
        if not keywords or not users:
            raise ValidationError("system has no keywords or no active users")

        def zipf_choice(pool: Sequence, size: int) -> List:
            ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
            probabilities = ranks ** (-config.zipf_s)
            probabilities /= probabilities.sum()
            indices = rng.choice(len(pool), size=size, p=probabilities)
            return [pool[int(index)] for index in indices]

        services = list(config.mix)
        weights = np.array([config.mix[s] for s in services], dtype=np.float64)
        weights /= weights.sum()
        drawn_services = rng.choice(
            len(services), size=config.num_queries, p=weights
        )

        keyword_draws = zipf_choice(keywords, config.num_queries)
        user_draws = zipf_choice(users, config.num_queries)
        queries: List[ServiceRequest] = []
        for position, service_index in enumerate(drawn_services):
            service = services[int(service_index)]
            if service == "influencers":
                queries.append(
                    FindInfluencersRequest(
                        keywords=(keyword_draws[position],), k=config.k
                    )
                )
            elif service == "suggest":
                queries.append(
                    SuggestKeywordsRequest(user=int(user_draws[position]), k=3)
                )
            elif service == "paths":
                queries.append(
                    ExplorePathsRequest(
                        user=int(user_draws[position]),
                        threshold=config.path_threshold,
                    )
                )
            else:  # complete
                queries.append(
                    CompleteRequest(
                        prefix=keyword_draws[position][:2], limit=10
                    )
                )
        return cls(queries)


@dataclass
class LatencyReport:
    """Latency percentiles per service, in milliseconds."""

    per_service: Dict[str, Dict[str, float]]
    total_queries: int
    cache_hit_rate: float
    wall_seconds: float
    service_stats: Dict[str, float] = field(default_factory=dict)

    def lines(self) -> List[str]:
        """Human-readable report."""
        rows = [
            f"{'service':<14s}{'count':>7s}{'p50':>9s}{'p95':>9s}"
            f"{'p99':>9s}{'max':>9s}"
        ]
        for service, stats in sorted(self.per_service.items()):
            rows.append(
                f"{service:<14s}{stats['count']:>7.0f}"
                f"{stats['p50_ms']:>9.2f}{stats['p95_ms']:>9.2f}"
                f"{stats['p99_ms']:>9.2f}{stats['max_ms']:>9.2f}"
            )
        rows.append(
            f"total {self.total_queries} queries in "
            f"{self.wall_seconds:.2f}s; cache hit rate "
            f"{100 * self.cache_hit_rate:.0f}%"
        )
        return rows

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable report (for benchmark JSON artifacts)."""
        return {
            "per_service": {
                service: dict(stats)
                for service, stats in self.per_service.items()
            },
            "total_queries": self.total_queries,
            "cache_hit_rate": self.cache_hit_rate,
            "wall_seconds": self.wall_seconds,
            "service_stats": dict(self.service_stats),
        }


def run_workload(
    system: Union[Octopus, OctopusService, ConcurrentOctopusService],
    workload: QueryWorkload,
    *,
    workers: Optional[int] = None,
    mode: str = "threads",
) -> LatencyReport:
    """Execute *workload* through the service layer and collect percentiles.

    *system* may be an :class:`OctopusService` (preferred — its cache and
    metrics persist across runs, so a second pass over the same workload
    shows the warm-cache speedup), a bare :class:`Octopus`, which is
    wrapped in a fresh service for the duration of the run, or a
    :class:`~repro.service.concurrent.ConcurrentOctopusService`, in which
    case queries are dispatched to its worker pool.  Passing ``workers > 1``
    wraps the service in a temporary concurrent executor (*mode* selects
    threads or processes) for the duration of the run.

    Individual query failures (e.g. a drawn user without enough keywords)
    are counted under ``errors`` rather than aborting the run — a serving
    system keeps going.
    """
    if len(workload) == 0:
        raise ValidationError("workload is empty")
    executor: Optional[ConcurrentOctopusService] = None
    owns_executor = False
    if isinstance(system, ConcurrentOctopusService):
        executor, service = system, system.service
    elif workers is not None and workers > 1:
        service = (
            system
            if isinstance(system, OctopusService)
            else OctopusService(system)
        )
        executor = ConcurrentOctopusService(service, workers=workers, mode=mode)
        owns_executor = True
    else:
        service = (
            system
            if isinstance(system, OctopusService)
            else OctopusService(system)
        )
    started = time.perf_counter()
    try:
        if executor is not None:
            responses = executor.execute_batch(workload.queries)
        else:
            responses = [
                service.execute(request) for request in workload.queries
            ]
    finally:
        if owns_executor:
            executor.close()
    wall = time.perf_counter() - started

    latencies: Dict[str, List[float]] = {}
    errors = 0
    cache_hits = 0
    for request, response in zip(workload.queries, responses):
        if not response.ok:
            errors += 1
            continue
        if response.cache_hit:
            cache_hits += 1
        latencies.setdefault(request.service, []).append(response.latency_ms)

    per_service: Dict[str, Dict[str, float]] = {}
    for name, values in latencies.items():
        array = np.asarray(values)
        per_service[name] = {
            "count": float(len(array)),
            "p50_ms": float(np.percentile(array, 50)),
            "p95_ms": float(np.percentile(array, 95)),
            "p99_ms": float(np.percentile(array, 99)),
            "max_ms": float(array.max()),
            "mean_ms": float(array.mean()),
        }
    if errors:
        per_service["errors"] = {
            "count": float(errors),
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
            "mean_ms": 0.0,
        }
    answered = len(workload) - errors
    return LatencyReport(
        per_service=per_service,
        total_queries=len(workload),
        cache_hit_rate=cache_hits / answered if answered else 0.0,
        wall_seconds=wall,
        service_stats=service.metrics.snapshot(),
    )

"""The OCTOPUS service dispatcher — the system's single front door.

:class:`OctopusService` routes typed requests (or their dict/JSON wire
forms) to the :class:`~repro.core.octopus.Octopus` compute backend through a
composable middleware stack, and always returns a
:class:`~repro.service.responses.ServiceResponse` — malformed input, unknown
services, backend validation failures and unexpected exceptions all become
structured error envelopes, never tracebacks.  :meth:`execute_batch` groups
same-service requests and shares results between duplicates so skewed
interactive workloads amortize index lookups.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.octopus import Octopus
from repro.index.cache import LRUCache
from repro.obs.trace import stage, stamp_response
from repro.service.middleware import (
    CacheMiddleware,
    Handler,
    MetricsMiddleware,
    Middleware,
    RateLimitMiddleware,
    ServiceMetrics,
    ValidationMiddleware,
)
from repro.service.requests import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    RadarRequest,
    ServiceRequest,
    StatsRequest,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
    request_from_dict,
    request_from_json,
)
from repro.service.responses import ServiceResponse, jsonify
from repro.utils.validation import ValidationError

__all__ = ["OctopusService"]

RequestLike = Union[ServiceRequest, Dict[str, Any], str]


class OctopusService:
    """Typed request/response service over an :class:`Octopus` backend.

    The default middleware stack, outermost first:

    1. metrics — latency/error/hit counters per service;
    2. rate limiting — only when ``rate_limit`` is given;
    3. validation — structural request checks;
    4. user middleware — anything passed via ``middleware``;
    5. result cache — LRU over successful cacheable responses.

    The result cache lives *here*, not in the backend: every entry point
    (CLI, workload engine, future wire servers) shares one cache with one
    set of counters.
    """

    def __init__(
        self,
        backend: Octopus,
        *,
        cache_capacity: Optional[int] = None,
        rate_limit: Optional[float] = None,
        middleware: Sequence[Middleware] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.backend = backend
        self.metrics = ServiceMetrics()
        self.cache = LRUCache(
            cache_capacity
            if cache_capacity is not None
            else backend.config.cache_capacity
        )
        stack: List[Middleware] = [MetricsMiddleware(self.metrics)]
        if rate_limit is not None:
            stack.append(RateLimitMiddleware(rate_limit, clock=clock))
        stack.append(ValidationMiddleware())
        stack.extend(middleware)
        stack.append(CacheMiddleware(self.cache))
        self.middleware: Tuple[Middleware, ...] = tuple(stack)
        self._handlers: Dict[str, Callable[[ServiceRequest], Dict[str, Any]]] = {
            FindInfluencersRequest.service: self._handle_influencers,
            TargetedInfluencersRequest.service: self._handle_targeted,
            SuggestKeywordsRequest.service: self._handle_suggest,
            ExplorePathsRequest.service: self._handle_paths,
            CompleteRequest.service: self._handle_complete,
            RadarRequest.service: self._handle_radar,
            StatsRequest.service: self._handle_stats,
        }
        # The stack is immutable after construction: compose it once
        # instead of allocating wrapper closures on every request.
        entry: Handler = self._handle
        for layer in reversed(self.middleware):
            entry = self._wrap(layer, entry)
        self._entry = entry

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, request: RequestLike) -> ServiceResponse:
        """Serve one request; never raises.

        Accepts a typed :class:`ServiceRequest`, its dict form, or a JSON
        string — the three shapes a log replayer or wire server deals in.
        When a request trace is active on the calling context, the
        response (error envelopes included) is stamped with its id and,
        in debug mode, the stage-timing breakdown.
        """
        try:
            typed = self._coerce(request)
        except ValidationError as error:
            return stamp_response(
                ServiceResponse.failure(
                    self._service_name_of(request),
                    "malformed_request",
                    str(error),
                )
            )
        return stamp_response(self._run_stack(typed))

    def execute_batch(
        self, requests: Sequence[RequestLike]
    ) -> List[ServiceResponse]:
        """Serve many requests, amortizing work across the batch.

        Requests are grouped by service and de-duplicated by cache key:
        each distinct query is computed once and its response shared with
        every duplicate (marked ``cache_hit=True``), which is where skewed
        workloads win.  Responses come back in input order, and a bad
        request only fails its own slot.
        """
        responses: List[Optional[ServiceResponse]] = [None] * len(requests)
        groups: Dict[str, List[Tuple[int, ServiceRequest]]] = {}
        for position, raw in enumerate(requests):
            try:
                typed = self._coerce(raw)
            except ValidationError as error:
                responses[position] = ServiceResponse.failure(
                    self._service_name_of(raw), "malformed_request", str(error)
                )
                continue
            groups.setdefault(typed.service, []).append((position, typed))
        for _service, members in groups.items():
            shared: Dict[Any, ServiceResponse] = {}
            for position, typed in members:
                key = typed.cache_key()
                try:
                    original = shared.get(key) if key is not None else None
                except TypeError:
                    # unhashable field value: structural validation will
                    # reject it inside the stack; just don't de-duplicate
                    key, original = None, None
                if original is not None:
                    started = time.perf_counter()
                    payload = copy.deepcopy(original.payload)
                    duplicate = dataclasses.replace(
                        original,
                        cache_hit=True,
                        payload=payload,
                        latency_ms=(time.perf_counter() - started) * 1e3,
                    )
                    responses[position] = duplicate
                    self.metrics.record(duplicate)
                    continue
                response = self._run_stack(typed)
                responses[position] = response
                if key is not None and response.ok:
                    shared[key] = response
        assert all(response is not None for response in responses)
        return [
            stamp_response(response)  # type: ignore[arg-type]
            for response in responses
        ]

    def stats(self) -> Dict[str, Any]:
        """Merged serving + backend statistics.

        Service-level metrics (``service.*``), result-cache counters
        (``cache.*``), the backend's build/index statistics, and the
        executor identity (``executor.kind`` / ``executor.workers``) in one
        flat dict — values are floats except the identity strings, so
        bench output and ops snapshots are self-describing.
        """
        stats: Dict[str, Any] = {}
        stats.update(self.metrics.snapshot())
        for key, value in self.cache.stats().items():
            stats[f"cache.{key}"] = float(value)
        stats.update(self.backend.statistics())
        stats["executor.kind"] = "serial"
        stats["executor.workers"] = 1.0
        return stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _service_name_of(request: RequestLike) -> str:
        """Best-effort service name for error envelopes on unparsable input."""
        if isinstance(request, ServiceRequest):
            return request.service
        if isinstance(request, dict):
            service = request.get("service")
            if isinstance(service, str) and service:
                return service
        return "unknown"

    @staticmethod
    def _coerce(request: RequestLike) -> ServiceRequest:
        """Normalise dict/JSON input to a typed request."""
        if isinstance(request, ServiceRequest):
            return request
        if isinstance(request, dict):
            return request_from_dict(request)
        if isinstance(request, str):
            return request_from_json(request)
        raise ValidationError(
            f"request must be a ServiceRequest, dict or JSON string, "
            f"got {type(request).__name__}"
        )

    def _run_stack(self, request: ServiceRequest) -> ServiceResponse:
        """Run the request through the pre-composed middleware chain."""
        return self._entry(request)

    @staticmethod
    def _wrap(layer: Middleware, inner: Handler) -> Handler:
        """One composition step (named function to keep closures distinct)."""

        def wrapped(request: ServiceRequest) -> ServiceResponse:
            return layer(request, inner)

        return wrapped

    def _handle(self, request: ServiceRequest) -> ServiceResponse:
        """Innermost handler: dispatch to the backend, envelope the outcome."""
        handler = self._handlers.get(request.service)
        if handler is None:
            return ServiceResponse.failure(
                request.service,
                "unknown_service",
                f"no handler for service {request.service!r}",
            )
        try:
            with stage("backend"):
                payload = handler(request)
        except ValidationError as error:
            return ServiceResponse.failure(
                request.service, "invalid_request", str(error)
            )
        except Exception as error:  # noqa: BLE001 — the envelope IS the contract
            return ServiceResponse.failure(
                request.service,
                "internal_error",
                f"{type(error).__name__}: {error}",
            )
        with stage("assemble"):
            return ServiceResponse.success(request.service, payload)

    # -- per-service handlers -------------------------------------------

    def _handle_influencers(self, request: FindInfluencersRequest) -> Dict:
        """Keyword IM via the backend; payload mirrors InfluencerResult."""
        result = self.backend.find_influencers(request.keywords, k=request.k)
        return {
            "keywords": list(result.query.keywords),
            "k": result.query.k,
            "gamma": jsonify(result.query.gamma),
            "seeds": list(result.seeds),
            "labels": list(result.labels),
            "spread": float(result.spread),
            "marginal_gains": list(result.marginal_gains),
            "elapsed_seconds": float(result.elapsed_seconds),
            "statistics": jsonify(result.statistics),
        }

    def _handle_targeted(self, request: TargetedInfluencersRequest) -> Dict:
        """Targeted keyword IM (relevant-audience variant) via the backend."""
        result = self.backend.find_targeted_influencers(
            request.keywords,
            k=request.k,
            audience_keywords=request.audience_keywords,
            num_sets=request.num_sets,
        )
        return {
            "keywords": list(result.query.keywords),
            "k": result.query.k,
            "gamma": jsonify(result.query.gamma),
            "seeds": list(result.seeds),
            "labels": list(result.labels),
            "spread": float(result.spread),
            "marginal_gains": list(result.marginal_gains),
            "elapsed_seconds": float(result.elapsed_seconds),
            "statistics": jsonify(result.statistics),
        }

    def _handle_suggest(self, request: SuggestKeywordsRequest) -> Dict:
        """Keyword suggestion via the backend."""
        result = self.backend.suggest_keywords(
            request.user, k=request.k, method=request.method
        )
        return {
            "target": int(result.target),
            "target_label": result.target_label,
            "keywords": list(result.keywords),
            "spread": float(result.spread),
            "gamma": jsonify(result.gamma),
            "per_keyword_spread": jsonify(result.per_keyword_spread),
            "elapsed_seconds": float(result.elapsed_seconds),
            "statistics": jsonify(result.statistics),
        }

    def _handle_paths(self, request: ExplorePathsRequest) -> Dict:
        """Path exploration via the backend; payload is PathTree.to_dict()."""
        tree = self.backend.explore_paths(
            request.user,
            keywords=request.keywords,
            threshold=request.threshold,
            direction=request.direction,
            max_nodes=request.max_nodes,
        )
        return tree.to_dict()

    def _handle_complete(self, request: CompleteRequest) -> Dict:
        """Auto-completion over the requested trie."""
        if request.kind == "users":
            completions = self.backend.autocomplete_users(
                request.prefix, request.limit
            )
        else:
            completions = self.backend.autocomplete_keywords(
                request.prefix, request.limit
            )
        return {
            "prefix": request.prefix,
            "kind": request.kind,
            "completions": [[key, int(value)] for key, value in completions],
        }

    def _handle_radar(self, request: RadarRequest) -> Dict:
        """Radar-diagram topic interpretation."""
        return dict(self.backend.radar(request.keywords))

    def _handle_stats(self, request: StatsRequest) -> Dict:
        """Live service + backend statistics snapshot."""
        return self.stats()

"""Composable middleware for the OCTOPUS service dispatcher.

A middleware is any callable ``(request, call_next) -> ServiceResponse``
where ``call_next(request)`` invokes the rest of the stack.  The dispatcher
composes a list of middleware outermost-first around the actual handler, so
cross-cutting serving concerns — metrics, rate limiting, validation, result
caching — are written once here instead of being re-implemented (or
forgotten) at every entry point.
"""

from __future__ import annotations

import copy
import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.index.cache import LRUCache
from repro.obs.histogram import LatencyHistogram
from repro.obs.trace import stage
from repro.service.requests import ServiceRequest
from repro.service.responses import ServiceResponse
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "Handler",
    "Middleware",
    "Counters",
    "ServiceMetrics",
    "MetricsMiddleware",
    "ValidationMiddleware",
    "CacheMiddleware",
    "RateLimitMiddleware",
]

Handler = Callable[[ServiceRequest], ServiceResponse]
Middleware = Callable[[ServiceRequest, Handler], ServiceResponse]


class Counters:
    """Thread-safe named counters and gauges for serving-layer metrics.

    The generic sibling of :class:`ServiceMetrics`: where that collector
    folds whole responses, this one counts *events* — queue admissions,
    shed requests, lane dispatches, timeouts — under one lock, and
    snapshots them flat under a fixed prefix so every front end's counters
    land in the same ``stats()`` dict shape.  ``observe`` additionally
    tracks a running maximum (``<name>.max``) for depth-style gauges.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._counts: Dict[str, float] = {}
        self._maxima: Dict[str, float] = {}

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add *amount* to counter *name* (created at zero)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record a gauge sample: keeps the running maximum of *name*."""
        with self._lock:
            if value > self._maxima.get(name, float("-inf")):
                self._maxima[name] = value

    def value(self, name: str) -> float:
        """Current value of counter *name* (0.0 when never incremented)."""
        with self._lock:
            return self._counts.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every counter and gauge, prefix applied."""
        with self._lock:
            stats = {
                f"{self.prefix}{name}": value
                for name, value in sorted(self._counts.items())
            }
            stats.update(
                {
                    f"{self.prefix}{name}.max": value
                    for name, value in sorted(self._maxima.items())
                }
            )
            return stats


@dataclass
class _ServiceCounters:
    """Per-service serving counters.

    Latency lives in a fixed-bucket :class:`LatencyHistogram` rather than
    running mean/max scalars: the histogram carries exact sum, count and
    max (so the historical ``mean_latency_ms`` / ``max_latency_ms``
    snapshot keys are still derived losslessly) plus per-bucket counts
    that make p50/p95/p99 derivable and shard-mergeable.
    """

    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)


@dataclass
class ServiceMetrics:
    """Per-service request counts, error counts, cache hits and latency.

    Thread-safe: the concurrent executor records responses from many
    worker threads into one collector, so every fold and snapshot happens
    under an internal lock (read-modify-write on the counters would
    otherwise lose updates).
    """

    per_service: Dict[str, _ServiceCounters] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, response: ServiceResponse) -> None:
        """Fold one response into the counters.

        Latency is folded for **every** response, error envelopes
        included — a slow failure is precisely the signal the latency
        histogram exists to surface, so the error path must never be
        cheaper in the metrics than it was on the wire.
        """
        with self._lock:
            counters = self.per_service.setdefault(
                response.service, _ServiceCounters()
            )
            counters.requests += 1
            if not response.ok:
                counters.errors += 1
            if response.cache_hit:
                counters.cache_hits += 1
            counters.histogram.observe(response.latency_ms)

    def snapshot(self) -> Dict[str, float]:
        """Flat metric dict, keyed ``service.<name>.<metric>``.

        Alongside the historical keys (``requests`` / ``errors`` /
        ``cache_hits`` / ``hit_rate`` / ``mean_latency_ms`` /
        ``max_latency_ms``, the latter two now derived from the
        histogram), each service emits ``p50/p95/p99_latency_ms`` and the
        per-bucket ``latency_ms_le.<edge>`` counts that the cluster
        coordinator sums across shards.
        """
        stats: Dict[str, float] = {}
        with self._lock:
            for service, counters in sorted(self.per_service.items()):
                prefix = f"service.{service}"
                stats[f"{prefix}.requests"] = float(counters.requests)
                stats[f"{prefix}.errors"] = float(counters.errors)
                stats[f"{prefix}.cache_hits"] = float(counters.cache_hits)
                stats[f"{prefix}.hit_rate"] = (
                    counters.cache_hits / counters.requests
                    if counters.requests
                    else 0.0
                )
                stats[f"{prefix}.mean_latency_ms"] = counters.histogram.mean_ms
                stats[f"{prefix}.max_latency_ms"] = counters.histogram.max_ms
                counters.histogram.snapshot_into(stats, prefix)
        return stats

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """Structured per-service state for the Prometheus renderer.

        Each entry carries the raw counters plus the **live**
        :class:`LatencyHistogram` (its accessors take their own lock), so
        the ``/metrics`` endpoint renders without copying bucket arrays.
        """
        with self._lock:
            return {
                service: {
                    "requests": float(counters.requests),
                    "errors": float(counters.errors),
                    "cache_hits": float(counters.cache_hits),
                    "histogram": counters.histogram,
                }
                for service, counters in sorted(self.per_service.items())
            }

    def reset(self) -> None:
        """Drop all counters."""
        with self._lock:
            self.per_service.clear()


class MetricsMiddleware:
    """Times every request and feeds a :class:`ServiceMetrics` collector.

    Placed outermost so latency covers the full stack (cache lookups and
    rejections included).
    """

    def __init__(self, metrics: ServiceMetrics) -> None:
        self.metrics = metrics

    def __call__(
        self, request: ServiceRequest, call_next: Handler
    ) -> ServiceResponse:
        """Measure the downstream call and record the outcome."""
        started = time.perf_counter()
        response = call_next(request)
        response = dataclasses.replace(
            response, latency_ms=(time.perf_counter() - started) * 1e3
        )
        self.metrics.record(response)
        return response


class ValidationMiddleware:
    """Runs :meth:`ServiceRequest.validate` and converts failures into
    ``invalid_request`` error envelopes before any index is touched."""

    def __call__(
        self, request: ServiceRequest, call_next: Handler
    ) -> ServiceResponse:
        """Validate, then continue down the stack."""
        try:
            with stage("validate"):
                request.validate()
        except ValidationError as error:
            return ServiceResponse.failure(
                request.service, "invalid_request", str(error)
            )
        return call_next(request)


class CacheMiddleware:
    """Serves repeated requests from an :class:`LRUCache` of responses.

    Only successful responses to requests with a non-``None``
    :meth:`~ServiceRequest.cache_key` are stored.  Hits are returned with
    ``cache_hit=True`` (the outer metrics middleware re-stamps latency).
    Payloads are deep-copied on both store and serve so a caller mutating
    its response can never poison the cache or other callers.
    """

    def __init__(self, cache: LRUCache) -> None:
        self.cache = cache

    def __call__(
        self, request: ServiceRequest, call_next: Handler
    ) -> ServiceResponse:
        """Answer from cache when possible; populate it otherwise."""
        key = request.cache_key()
        if key is None:
            return call_next(request)
        with stage("cache_lookup"):
            cached = self.cache.get(key)
        if cached is not None:
            return dataclasses.replace(
                cached, cache_hit=True, payload=copy.deepcopy(cached.payload)
            )
        response = call_next(request)
        if response.ok:
            self.cache.put(
                key,
                dataclasses.replace(
                    response, payload=copy.deepcopy(response.payload)
                ),
            )
        return response


class RateLimitMiddleware:
    """Token-bucket rate limiter (optional; off unless installed).

    Allows bursts up to *burst* requests and refills at *rate_per_second*.
    Over-limit requests get a ``rate_limited`` error envelope instead of
    queueing — shedding load is the serving-system behaviour.  The clock is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        rate_per_second: float,
        *,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        check_positive(rate_per_second, "rate_per_second")
        self.rate = float(rate_per_second)
        self.burst = float(burst if burst is not None else max(1, int(rate_per_second)))
        check_positive(self.burst, "burst")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        # Refill-then-spend is a read-modify-write on the bucket; the lock
        # keeps the budget exact when worker threads race through it.
        self._bucket_lock = threading.Lock()

    def __call__(
        self, request: ServiceRequest, call_next: Handler
    ) -> ServiceResponse:
        """Spend a token or reject with ``rate_limited``."""
        with stage("rate_limit"), self._bucket_lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens < 1.0:
                deficit = 1.0 - self._tokens
                return ServiceResponse.failure(
                    request.service,
                    "rate_limited",
                    f"rate limit of {self.rate:g} requests/s exceeded",
                    details={"retry_after_seconds": deficit / self.rate},
                )
            self._tokens -= 1.0
        return call_next(request)

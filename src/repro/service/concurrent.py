"""Concurrent request execution over the typed service layer.

:class:`ConcurrentOctopusService` serves the *same*
:class:`~repro.service.requests.ServiceRequest` /
:class:`~repro.service.responses.ServiceResponse` envelopes as
:class:`~repro.service.dispatcher.OctopusService`, but runs them on a
worker pool:

* ``mode="threads"`` (default) — workers share one dispatcher, one result
  cache and one metrics collector.  CPython's GIL bounds the speedup of
  pure-Python compute, so this mode's wins are overlap (queries that
  release the GIL, e.g. NumPy-heavy estimation or chunk dispatch to a
  process backend) and **in-flight de-duplication**: identical requests
  submitted while the first is still computing share its result instead of
  recomputing it — the concurrency analogue of the batch executor's
  duplicate sharing.
* ``mode="processes"`` — each worker owns a forked replica of the service,
  sidestepping the GIL for true parallel query execution.  The parent
  keeps the authoritative metrics and result cache (consulted before
  dispatch, populated after), so repeated queries still hit one shared
  cache and ``stats()`` stays meaningful.

Everything is future-based: :meth:`~ConcurrentOctopusService.submit`
returns a :class:`~concurrent.futures.Future` resolving to a
``ServiceResponse`` (never an exception — the envelope *is* the error
contract), :meth:`~ConcurrentOctopusService.execute` waits for one
request, and :meth:`~ConcurrentOctopusService.execute_batch` waits for
many while preserving input order.
"""

from __future__ import annotations

import contextvars
import copy
import dataclasses
import multiprocessing
import threading
import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.backend.base import default_worker_count
from repro.core.octopus import Octopus
from repro.service.dispatcher import OctopusService, RequestLike
from repro.service.middleware import CacheMiddleware
from repro.service.requests import ServiceRequest
from repro.service.responses import ServiceResponse
from repro.utils.validation import ValidationError, check_positive

__all__ = ["ConcurrentOctopusService"]

# Per-worker service replica for process mode, installed by the pool
# initializer.  With the ``fork`` start method the replica is inherited by
# copy-on-write, so the (expensive) indexes are never pickled.
_WORKER_SERVICE: Optional[OctopusService] = None


class _NoOpCache:
    """Disables a worker replica's result cache (see initializer below)."""

    @staticmethod
    def get(key: Any) -> None:
        return None

    @staticmethod
    def put(key: Any, value: Any) -> None:
        pass


def _adopt_worker_service(service: OctopusService) -> None:
    """Pool initializer: install this process's service replica.

    Two fork-hygiene adjustments:

    * pooled execution backends do not survive a fork (their worker
      threads/processes belong to the parent), so the replica's backend
      drops its executor and lazily re-creates one if needed;
    * the replica's result cache is disabled — the *parent* keeps the one
      authoritative cache, and a private forked cache could serve stale
      results forever (the parent cannot see or invalidate it after e.g. a
      ``cache.clear()`` or model refresh).
    """
    global _WORKER_SERVICE
    execution = getattr(service.backend, "execution", None)
    if execution is not None and hasattr(execution, "_executor"):
        execution._executor = None
    if execution is not None and hasattr(execution, "_reset_shm_after_fork"):
        # The parent's shared-memory arenas belong to the parent's pool;
        # this replica must build its own (inside the inherited session
        # directory, which keeps crash cleanup with the original owner).
        execution._reset_shm_after_fork()
    for layer in service.middleware:
        if isinstance(layer, CacheMiddleware):
            layer.cache = _NoOpCache()
    _WORKER_SERVICE = service


def _process_execute(request: ServiceRequest) -> ServiceResponse:
    """Run one request on this worker's replica (process mode)."""
    if _WORKER_SERVICE is None:  # pragma: no cover — initializer contract
        return ServiceResponse.failure(
            request.service, "internal_error", "worker has no service replica"
        )
    return _WORKER_SERVICE.execute(request)


class ConcurrentOctopusService:
    """Worker-pool executor for the OCTOPUS service layer.

    Accepts either an existing :class:`OctopusService` or a bare
    :class:`Octopus` backend (wrapped with *service_kwargs*).  The wrapped
    dispatcher stays fully usable on its own; this class adds scheduling,
    not semantics.
    """

    def __init__(
        self,
        service: Union[OctopusService, Octopus],
        *,
        workers: Optional[int] = None,
        mode: str = "threads",
        **service_kwargs: Any,
    ) -> None:
        if isinstance(service, OctopusService):
            if service_kwargs:
                raise ValidationError(
                    "service_kwargs only apply when wrapping a bare Octopus"
                )
            self.service = service
        elif isinstance(service, Octopus):
            self.service = OctopusService(service, **service_kwargs)
        else:
            raise ValidationError(
                f"service must be an OctopusService or Octopus, "
                f"got {type(service).__name__}"
            )
        if mode not in ("threads", "processes"):
            raise ValidationError(
                f"mode must be 'threads' or 'processes', got {mode!r}"
            )
        if mode == "processes" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValidationError(
                "process mode needs the 'fork' start method (POSIX only); "
                "use mode='threads' on this platform"
            )
        self.mode = mode
        self.workers = int(workers) if workers is not None else default_worker_count()
        check_positive(self.workers, "workers")
        self._executor: Optional[Executor] = None
        self._executor_lock = threading.Lock()
        self._inflight: Dict[Tuple[str, Any], "Future[ServiceResponse]"] = {}
        # RLock: registering an already-completed future (e.g. a parent
        # cache hit) fires its retire callback synchronously on this same
        # thread, which re-enters the lock.
        self._inflight_lock = threading.RLock()
        self._shared_inflight = 0
        self.closed = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, request: RequestLike) -> ServiceResponse:
        """Serve one request on the pool and wait for it; never raises."""
        return self.submit(request).result()

    def execute_batch(
        self, requests: Sequence[RequestLike]
    ) -> List[ServiceResponse]:
        """Serve many requests concurrently, in input order.

        Duplicates are shared through in-flight de-duplication (marked
        ``cache_hit=True``) exactly as the sequential batch executor
        shares them, and a bad request fails only its own slot.
        """
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def submit(self, request: RequestLike) -> "Future[ServiceResponse]":
        """Enqueue one request; the future always resolves to an envelope.

        Identical cacheable requests submitted while one is already in
        flight attach to the leader's computation and receive its result
        with ``cache_hit=True``; if the leader fails, each follower
        recomputes independently (failures are never shared, matching the
        batch executor).
        """
        try:
            typed = OctopusService._coerce(request)
        except ValidationError as error:
            return _completed(
                ServiceResponse.failure(
                    OctopusService._service_name_of(request),
                    "malformed_request",
                    str(error),
                )
            )
        key = self._dedup_key(typed)
        if key is None:
            return self._submit_compute(typed)
        with self._inflight_lock:
            leader = self._inflight.get(key)
            if leader is None:
                future = self._submit_compute(typed)
                self._inflight[key] = future
                future.add_done_callback(
                    lambda done, key=key: self._retire_inflight(key, done)
                )
                return future
            self._shared_inflight += 1
        return self._attach_follower(leader, typed)

    def stats(self) -> Dict[str, Any]:
        """Service + backend statistics plus executor-level counters."""
        stats = self.service.stats()
        stats["executor.kind"] = self.mode
        stats["executor.workers"] = float(self.workers)
        stats["executor.process_mode"] = float(self.mode == "processes")
        with self._inflight_lock:
            stats["executor.inflight"] = float(len(self._inflight))
            stats["executor.shared_inflight"] = float(self._shared_inflight)
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain and release the worker pool."""
        self.closed = True
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ConcurrentOctopusService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Convenience delegation (the executor is a drop-in dispatcher)
    # ------------------------------------------------------------------

    @property
    def backend(self) -> Octopus:
        """The compute backend of the wrapped dispatcher."""
        return self.service.backend

    @property
    def cache(self):
        """The shared result cache (authoritative in both modes)."""
        return self.service.cache

    @property
    def metrics(self):
        """The shared metrics collector (authoritative in both modes)."""
        return self.service.metrics

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pool(self) -> Executor:
        with self._executor_lock:
            if self._executor is None:
                if self.closed:
                    raise ValidationError("executor is closed")
                if self.mode == "threads":
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="octopus-service",
                    )
                else:
                    # fork: workers inherit the parent's indexes by
                    # copy-on-write instead of pickling them.
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=multiprocessing.get_context("fork"),
                        initializer=_adopt_worker_service,
                        initargs=(self.service,),
                    )
            return self._executor

    @staticmethod
    def _dedup_key(typed: ServiceRequest) -> Optional[Tuple[str, Any]]:
        """Hashable in-flight identity of a request, or ``None``."""
        try:
            raw = typed.cache_key()
            if raw is None:
                return None
            key = (typed.service, raw)
            hash(key)
        except TypeError:
            # Unhashable field values fail structural validation inside
            # the stack; just don't de-duplicate them.
            return None
        return key

    def _retire_inflight(
        self, key: Tuple[str, Any], future: "Future[ServiceResponse]"
    ) -> None:
        with self._inflight_lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]

    def _submit_compute(
        self, typed: ServiceRequest
    ) -> "Future[ServiceResponse]":
        """Dispatch one computation to the pool (no de-duplication).

        Thread mode runs the dispatch under a copy of the caller's
        context so a front door's active request trace (a context
        variable) follows the request onto the worker thread.
        """
        if self.mode == "threads":
            context = contextvars.copy_context()
            return self._pool().submit(
                context.run, self.service.execute, typed
            )
        return self._submit_process(typed)

    def _submit_process(
        self, typed: ServiceRequest
    ) -> "Future[ServiceResponse]":
        """Process mode: parent-side cache check, dispatch, then record."""
        key = typed.cache_key()
        if key is not None:
            cached = self.service.cache.get(key)
            if cached is not None:
                started = time.perf_counter()
                response = dataclasses.replace(
                    cached,
                    cache_hit=True,
                    payload=copy.deepcopy(cached.payload),
                    latency_ms=(time.perf_counter() - started) * 1e3,
                )
                self.service.metrics.record(response)
                return _completed(response)
        outer: "Future[ServiceResponse]" = Future()
        inner = self._pool().submit(_process_execute, typed)

        def _finish(done: "Future[ServiceResponse]") -> None:
            try:
                response = done.result()
            except Exception as error:  # noqa: BLE001 — envelope contract
                response = ServiceResponse.failure(
                    typed.service,
                    "internal_error",
                    f"{type(error).__name__}: {error}",
                )
            self.service.metrics.record(response)
            if key is not None and response.ok and not response.cache_hit:
                # Tracing fields never enter the cache: a later hit
                # belongs to a different request.
                self.service.cache.put(
                    key,
                    dataclasses.replace(
                        response,
                        payload=copy.deepcopy(response.payload),
                        request_id=None,
                        timings=None,
                    ),
                )
            outer.set_result(response)

        inner.add_done_callback(_finish)
        return outer

    def _attach_follower(
        self, leader: "Future[ServiceResponse]", typed: ServiceRequest
    ) -> "Future[ServiceResponse]":
        """Share the leader's eventual result with a duplicate request."""
        follower: "Future[ServiceResponse]" = Future()

        def _on_leader_done(done: "Future[ServiceResponse]") -> None:
            try:
                response = done.result()
            except Exception:  # noqa: BLE001 — leader already normalises
                response = None
            if response is not None and response.ok:
                started = time.perf_counter()
                shared = dataclasses.replace(
                    response,
                    cache_hit=True,
                    payload=copy.deepcopy(response.payload),
                    latency_ms=(time.perf_counter() - started) * 1e3,
                )
                self.service.metrics.record(shared)
                follower.set_result(shared)
                return
            # Failures are not shared: recompute this duplicate alone.
            retry = self._submit_compute(typed)
            retry.add_done_callback(
                lambda done_retry: follower.set_result(done_retry.result())
            )

        leader.add_done_callback(_on_leader_done)
        return follower


def _completed(response: ServiceResponse) -> "Future[ServiceResponse]":
    """A future that is already resolved to *response*."""
    future: "Future[ServiceResponse]" = Future()
    future.set_result(response)
    return future

"""Typed service layer: the single front door to the OCTOPUS system.

Every online capability — keyword influence maximization, keyword
suggestion, path exploration, auto-completion, radar interpretation and
statistics — is addressed with a typed request and answered with a uniform
:class:`~repro.service.responses.ServiceResponse` envelope.  The
:class:`~repro.service.dispatcher.OctopusService` dispatcher adds the
cross-cutting serving concerns (result caching, metrics, validation,
optional rate limiting, batch execution) once, for every entry point::

    from repro import Octopus, OctopusService, FindInfluencersRequest

    service = OctopusService(Octopus.from_dataset(dataset))
    response = service.execute(FindInfluencersRequest("data mining", k=5))
    assert response.ok
    print(response.payload["labels"], response.latency_ms)

Requests and responses serialize losslessly to JSON, so query streams can
be logged, replayed and served over a wire.

For concurrent serving, :class:`~repro.service.concurrent.ConcurrentOctopusService`
runs the same envelopes over a thread or process worker pool with in-flight
de-duplication of identical requests::

    with ConcurrentOctopusService(service, workers=4) as executor:
        responses = executor.execute_batch(requests)
"""

from repro.service.concurrent import ConcurrentOctopusService
from repro.service.dispatcher import OctopusService
from repro.service.middleware import (
    CacheMiddleware,
    Counters,
    MetricsMiddleware,
    Middleware,
    RateLimitMiddleware,
    ServiceMetrics,
    ValidationMiddleware,
)
from repro.service.requests import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    RadarRequest,
    ServiceRequest,
    StatsRequest,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
    known_services,
    request_from_dict,
    request_from_json,
)
from repro.service.responses import (
    ServiceError,
    ServiceResponse,
    deterministic_form,
    jsonify,
)

__all__ = [
    "OctopusService",
    "ConcurrentOctopusService",
    "ServiceRequest",
    "FindInfluencersRequest",
    "TargetedInfluencersRequest",
    "SuggestKeywordsRequest",
    "ExplorePathsRequest",
    "CompleteRequest",
    "RadarRequest",
    "StatsRequest",
    "ServiceResponse",
    "ServiceError",
    "ServiceMetrics",
    "Counters",
    "Middleware",
    "MetricsMiddleware",
    "ValidationMiddleware",
    "CacheMiddleware",
    "RateLimitMiddleware",
    "request_from_dict",
    "request_from_json",
    "known_services",
    "deterministic_form",
    "jsonify",
]

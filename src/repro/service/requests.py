"""Typed requests of the OCTOPUS service API.

Every online operation is described by a small, frozen, JSON-serializable
dataclass.  A request knows three things: the *service* it addresses (the
dispatch key), how to *validate* itself structurally before any index is
touched, and its *cache key* (or ``None`` for uncacheable services such as
statistics).  Requests round-trip losslessly through ``to_dict``/``to_json``
and :func:`request_from_dict`/:func:`request_from_json`, which is what lets
query streams be logged, replayed and eventually served over a wire.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Sequence, Tuple, Type, Union

from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "ServiceRequest",
    "FindInfluencersRequest",
    "TargetedInfluencersRequest",
    "SuggestKeywordsRequest",
    "ExplorePathsRequest",
    "CompleteRequest",
    "RadarRequest",
    "StatsRequest",
    "request_from_dict",
    "request_from_json",
    "known_services",
]

_REQUEST_TYPES: Dict[str, Type["ServiceRequest"]] = {}


def _normalize_keywords(
    keywords: Union[str, Sequence[str]], name: str
) -> Tuple[str, ...]:
    """Canonicalise keyword input into a stripped, non-empty tuple."""
    if isinstance(keywords, str):
        parts = [part.strip() for part in keywords.split(",") if part.strip()]
    elif isinstance(keywords, Sequence):
        parts = [str(part).strip() for part in keywords if str(part).strip()]
    else:
        raise ValidationError(
            f"{name} must be a string or a sequence of strings, "
            f"got {type(keywords).__name__}"
        )
    if not parts:
        raise ValidationError(f"{name} must contain at least one keyword")
    return tuple(parts)


@dataclass(frozen=True)
class ServiceRequest:
    """Base class of all service requests.

    Subclasses set the class attribute ``service`` (the dispatch key) and are
    automatically registered for :func:`request_from_dict`.
    """

    service: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.service:
            _REQUEST_TYPES[cls.service] = cls

    def validate(self) -> None:
        """Structural validation; raises :class:`ValidationError` on bad input.

        This checks shapes and ranges only — semantic checks that need the
        indexes (unknown keyword, unknown user) happen in the backend.
        """

    def cache_key(self) -> Optional[Tuple]:
        """Hashable identity for the result cache; ``None`` disables caching."""
        return (self.service,) + tuple(
            getattr(self, f.name) for f in dataclasses.fields(self)
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dict, ``service`` field included."""
        payload: Dict[str, Any] = {"service": self.service}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        return payload

    def to_json(self) -> str:
        """Compact JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass(frozen=True)
class FindInfluencersRequest(ServiceRequest):
    """Keyword-based influence maximization (paper §II-C).

    ``keywords`` accepts a comma-separated string or a sequence and is
    canonicalised to a tuple; ``k`` defaults to the engine's configured
    seed-set size when ``None``.
    """

    service: ClassVar[str] = "influencers"

    keywords: Union[str, Sequence[str]] = ()
    k: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "keywords", _normalize_keywords(self.keywords, "keywords")
        )

    def validate(self) -> None:
        """Check that ``k`` is a positive integer when given."""
        if self.k is not None:
            if isinstance(self.k, bool) or not isinstance(self.k, int):
                raise ValidationError(f"k must be an integer, got {self.k!r}")
            check_positive(self.k, "k")


@dataclass(frozen=True)
class TargetedInfluencersRequest(ServiceRequest):
    """Targeted keyword IM: only the relevant audience counts (ref. [7]).

    ``audience_keywords`` targets a different population than the
    propagated topic; ``None`` means the audience is the users of the
    query keywords themselves.
    """

    service: ClassVar[str] = "targeted"

    keywords: Union[str, Sequence[str]] = ()
    k: Optional[int] = None
    audience_keywords: Optional[Union[str, Sequence[str]]] = None
    num_sets: int = 2000

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "keywords", _normalize_keywords(self.keywords, "keywords")
        )
        if self.audience_keywords is not None:
            object.__setattr__(
                self,
                "audience_keywords",
                _normalize_keywords(self.audience_keywords, "audience_keywords"),
            )

    def validate(self) -> None:
        """Check that ``k`` and ``num_sets`` are positive integers."""
        if self.k is not None:
            if isinstance(self.k, bool) or not isinstance(self.k, int):
                raise ValidationError(f"k must be an integer, got {self.k!r}")
            check_positive(self.k, "k")
        if isinstance(self.num_sets, bool) or not isinstance(self.num_sets, int):
            raise ValidationError(
                f"num_sets must be an integer, got {self.num_sets!r}"
            )
        check_positive(self.num_sets, "num_sets")


@dataclass(frozen=True)
class SuggestKeywordsRequest(ServiceRequest):
    """Personalized influential-keyword suggestion (paper §II-D)."""

    service: ClassVar[str] = "suggest"

    user: Union[int, str] = 0
    k: int = 3
    method: str = "greedy"

    def validate(self) -> None:
        """Check user/k/method shapes."""
        if isinstance(self.user, bool) or not isinstance(self.user, (int, str)):
            raise ValidationError(
                f"user must be an id or a name, got {self.user!r}"
            )
        if isinstance(self.k, bool) or not isinstance(self.k, int):
            raise ValidationError(f"k must be an integer, got {self.k!r}")
        check_positive(self.k, "k")
        if self.method not in ("greedy", "exact"):
            raise ValidationError(
                f"method must be 'greedy' or 'exact', got {self.method!r}"
            )


@dataclass(frozen=True)
class ExplorePathsRequest(ServiceRequest):
    """Influential path-tree exploration (paper §II-E)."""

    service: ClassVar[str] = "paths"

    user: Union[int, str] = 0
    keywords: Optional[Union[str, Sequence[str]]] = None
    threshold: Optional[float] = None
    direction: str = "influences"
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.keywords is not None:
            object.__setattr__(
                self, "keywords", _normalize_keywords(self.keywords, "keywords")
            )

    def validate(self) -> None:
        """Check user/threshold/direction shapes."""
        if isinstance(self.user, bool) or not isinstance(self.user, (int, str)):
            raise ValidationError(
                f"user must be an id or a name, got {self.user!r}"
            )
        if self.threshold is not None:
            if not isinstance(self.threshold, (int, float)) or not (
                0.0 <= float(self.threshold) <= 1.0
            ):
                raise ValidationError(
                    f"threshold must be in [0, 1], got {self.threshold!r}"
                )
        if self.direction not in ("influences", "influenced_by"):
            raise ValidationError(
                f"direction must be 'influences' or 'influenced_by', "
                f"got {self.direction!r}"
            )
        if self.max_nodes is not None:
            if isinstance(self.max_nodes, bool) or not isinstance(
                self.max_nodes, int
            ):
                raise ValidationError(
                    f"max_nodes must be an integer, got {self.max_nodes!r}"
                )
            check_positive(self.max_nodes, "max_nodes")


@dataclass(frozen=True)
class CompleteRequest(ServiceRequest):
    """Auto-completion over the user or keyword tries."""

    service: ClassVar[str] = "complete"

    prefix: str = ""
    kind: str = "keywords"
    limit: int = 10

    def validate(self) -> None:
        """Check prefix/kind/limit shapes."""
        if not isinstance(self.prefix, str) or not self.prefix:
            raise ValidationError("prefix must be a non-empty string")
        if self.kind not in ("keywords", "users"):
            raise ValidationError(
                f"kind must be 'keywords' or 'users', got {self.kind!r}"
            )
        if isinstance(self.limit, bool) or not isinstance(self.limit, int):
            raise ValidationError(f"limit must be an integer, got {self.limit!r}")
        check_positive(self.limit, "limit")


@dataclass(frozen=True)
class RadarRequest(ServiceRequest):
    """Radar-diagram topic interpretation of a keyword set."""

    service: ClassVar[str] = "radar"

    keywords: Union[str, Sequence[str]] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "keywords", _normalize_keywords(self.keywords, "keywords")
        )


@dataclass(frozen=True)
class StatsRequest(ServiceRequest):
    """System, index and serving statistics.

    Never cached — the whole point is a live snapshot.
    """

    service: ClassVar[str] = "stats"

    def cache_key(self) -> Optional[Tuple]:
        """Statistics are live; caching them would serve stale counters."""
        return None


def known_services() -> Tuple[str, ...]:
    """Registered service names, sorted."""
    return tuple(sorted(_REQUEST_TYPES))


def request_from_dict(payload: Dict[str, Any]) -> ServiceRequest:
    """Rebuild a typed request from its :meth:`ServiceRequest.to_dict` form.

    Raises :class:`ValidationError` on a missing/unknown ``service`` key or
    unexpected fields, so the dispatcher can turn malformed wire input into
    an error envelope instead of a traceback.
    """
    if not isinstance(payload, dict):
        raise ValidationError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    service = payload.get("service")
    if service is None:
        raise ValidationError("request is missing the 'service' field")
    request_type = _REQUEST_TYPES.get(service)
    if request_type is None:
        raise ValidationError(
            f"unknown service {service!r}; known: {sorted(_REQUEST_TYPES)}"
        )
    field_names = {f.name for f in dataclasses.fields(request_type)}
    arguments = {key: value for key, value in payload.items() if key != "service"}
    unexpected = set(arguments) - field_names
    if unexpected:
        raise ValidationError(
            f"unexpected fields for service {service!r}: {sorted(unexpected)}"
        )
    try:
        return request_type(**arguments)
    except TypeError as error:
        raise ValidationError(f"bad request for {service!r}: {error}") from None


def request_from_json(text: str) -> ServiceRequest:
    """Parse a JSON string into a typed request (see :func:`request_from_dict`)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValidationError(f"request is not valid JSON: {error}") from None
    return request_from_dict(payload)

"""Response envelope and error type of the OCTOPUS service API.

Every service call returns a :class:`ServiceResponse` — success or failure,
never an exception.  The payload is restricted to plain JSON types (dicts,
lists, strings, numbers, booleans, ``None``) so that a response written to a
log can be parsed back into an identical object: ``ServiceResponse.from_json
(response.to_json()) == response`` holds for every service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.utils.validation import ValidationError

__all__ = [
    "ServiceError",
    "ServiceResponse",
    "deterministic_form",
    "jsonify",
]

#: Payload keys that carry wall-clock measurements rather than computed
#: content.  Everything else in a payload is covered by the determinism
#: contract (fixed seed ⇒ identical bytes on any executor or transport).
VOLATILE_PAYLOAD_KEYS = frozenset({"elapsed_seconds"})


def _strip_volatile(value: Any) -> Any:
    """Deep-copy *value* with volatile measurement keys removed."""
    if isinstance(value, dict):
        return {
            key: _strip_volatile(item)
            for key, item in value.items()
            if key not in VOLATILE_PAYLOAD_KEYS
        }
    if isinstance(value, list):
        return [_strip_volatile(item) for item in value]
    return value


def deterministic_form(response: "ServiceResponse") -> str:
    """The response's deterministic content as canonical JSON text.

    Serving-time measurements — the envelope's ``latency_ms`` and
    ``cache_hit`` flags, and wall-clock ``elapsed_seconds`` fields at any
    depth inside the payload — are stripped; what remains is exactly what
    the determinism contract promises to reproduce bit-for-bit for a fixed
    seed, on any executor, over any transport.  Two responses to the same
    query therefore compare **byte-identical** here whether they were
    computed in-process, on a worker pool, or across an HTTP socket.
    """
    return json.dumps(
        {
            "service": response.service,
            "ok": response.ok,
            "payload": _strip_volatile(response.payload)
            if response.payload is not None
            else None,
            "error": response.error.to_dict() if response.error is not None else None,
        },
        sort_keys=True,
    )


def jsonify(value: Any) -> Any:
    """Deep-convert *value* into plain JSON types.

    NumPy scalars become Python numbers, arrays become lists, tuples become
    lists, mapping keys become strings.  Anything not representable raises
    :class:`ValidationError` rather than producing a payload that would fail
    to serialize later.
    """
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(item) for item in value]
    raise ValidationError(
        f"value of type {type(value).__name__} is not JSON-serializable"
    )


@dataclass(frozen=True)
class ServiceError:
    """Structured failure carried inside a :class:`ServiceResponse`.

    ``code`` is machine-readable (``invalid_request``, ``unknown_service``,
    ``malformed_request``, ``rate_limited``, ``internal_error``); ``message``
    is the human-readable explanation (including e.g. "did you mean ...?"
    completion hints); ``details`` holds optional structured context.
    """

    code: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dict."""
        return {
            "code": self.code,
            "message": self.message,
            "details": jsonify(self.details),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServiceError":
        """Rebuild an error from its :meth:`to_dict` form."""
        return cls(
            code=str(payload["code"]),
            message=str(payload["message"]),
            details=dict(payload.get("details") or {}),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """Uniform envelope returned by every service call.

    ``ok`` tells success from failure; exactly one of ``payload`` / ``error``
    is meaningful.  ``latency_ms`` measures the full serving path (middleware
    included), ``cache_hit`` marks answers served from the result cache (or
    shared within a batch) without recomputation.

    ``request_id`` and ``timings`` are the tracing section
    (:mod:`repro.obs`): the per-request id stamped at the front door and,
    when the caller opted into debug timings, the per-stage wall-clock
    breakdown in milliseconds.  Like ``latency_ms`` / ``cache_hit`` they
    are wall-clock measurements outside the determinism contract —
    :func:`deterministic_form` never includes them — and they are only
    emitted on the wire when set, so untraced envelopes keep their exact
    historical byte shape.
    """

    service: str
    ok: bool
    payload: Optional[Dict[str, Any]] = None
    error: Optional[ServiceError] = None
    latency_ms: float = 0.0
    cache_hit: bool = False
    request_id: Optional[str] = None
    timings: Optional[Dict[str, float]] = None

    def raise_for_error(self) -> "ServiceResponse":
        """Convenience for callers that do want an exception on failure."""
        if not self.ok:
            assert self.error is not None
            raise ValidationError(f"[{self.error.code}] {self.error.message}")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dict.

        The tracing fields are emitted only when set, so responses from
        an untraced serve are byte-identical to the pre-tracing wire
        format.
        """
        body: Dict[str, Any] = {
            "service": self.service,
            "ok": self.ok,
            "payload": jsonify(self.payload) if self.payload is not None else None,
            "error": self.error.to_dict() if self.error is not None else None,
            "latency_ms": float(self.latency_ms),
            "cache_hit": self.cache_hit,
        }
        if self.request_id is not None:
            body["request_id"] = self.request_id
        if self.timings is not None:
            body["timings"] = {
                str(name): float(value) for name, value in self.timings.items()
            }
        return body

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServiceResponse":
        """Rebuild a response from its :meth:`to_dict` form."""
        error = payload.get("error")
        timings = payload.get("timings")
        return cls(
            service=str(payload["service"]),
            ok=bool(payload["ok"]),
            payload=payload.get("payload"),
            error=ServiceError.from_dict(error) if error is not None else None,
            latency_ms=float(payload.get("latency_ms", 0.0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            request_id=payload.get("request_id"),
            timings=dict(timings) if timings is not None else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "ServiceResponse":
        """Parse a JSON string produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def success(
        cls,
        service: str,
        payload: Dict[str, Any],
        *,
        cache_hit: bool = False,
    ) -> "ServiceResponse":
        """Build a success envelope (payload is deep-converted to JSON types)."""
        return cls(
            service=service,
            ok=True,
            payload=jsonify(payload),
            cache_hit=cache_hit,
        )

    @classmethod
    def failure(
        cls,
        service: str,
        code: str,
        message: str,
        *,
        details: Optional[Dict[str, Any]] = None,
    ) -> "ServiceResponse":
        """Build an error envelope."""
        return cls(
            service=service,
            ok=False,
            error=ServiceError(code=code, message=message, details=details or {}),
        )

"""OCTOPUS: an online topic-aware influence analysis system (ICDE 2018).

A full reproduction of the OCTOPUS system: topic-aware independent-cascade
modelling with EM learning, keyword-based influence maximization with a
best-effort bound framework and topic-sample index, personalized influential
keyword suggestion over an influencer index, and MIA-based influential-path
exploration — behind the :class:`~repro.core.octopus.Octopus` facade.

Quickstart::

    from repro import CitationNetworkGenerator, Octopus

    dataset = CitationNetworkGenerator(num_researchers=500, seed=7).generate()
    system = Octopus.from_dataset(dataset)
    result = system.find_influencers("data mining", k=5)
    for node, label in result.top(5):
        print(label)
"""

from repro.core.octopus import Octopus, OctopusConfig
from repro.core.query import InfluencerResult, KeywordQuery, KeywordSuggestionResult
from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.social import SocialNetworkGenerator
from repro.graph.digraph import GraphBuilder, SocialGraph
from repro.topics.edges import TopicEdgeWeights
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary

__version__ = "1.0.0"

__all__ = [
    "Octopus",
    "OctopusConfig",
    "KeywordQuery",
    "InfluencerResult",
    "KeywordSuggestionResult",
    "CitationNetworkGenerator",
    "SocialNetworkGenerator",
    "SocialGraph",
    "GraphBuilder",
    "TopicEdgeWeights",
    "TopicModel",
    "Vocabulary",
    "__version__",
]

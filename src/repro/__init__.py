"""OCTOPUS: an online topic-aware influence analysis system (ICDE 2018).

A full reproduction of the OCTOPUS system: topic-aware independent-cascade
modelling with EM learning, keyword-based influence maximization with a
best-effort bound framework and topic-sample index, personalized influential
keyword suggestion over an influencer index, and MIA-based influential-path
exploration.  The :class:`~repro.core.octopus.Octopus` facade is the compute
backend; the typed :class:`~repro.service.OctopusService` layer in front of
it is the recommended entry point — it adds result caching, metrics,
validation envelopes and batch execution, and speaks JSON.

Quickstart::

    from repro import (
        CitationNetworkGenerator, Octopus, OctopusService,
        FindInfluencersRequest,
    )

    dataset = CitationNetworkGenerator(num_researchers=500, seed=7).generate()
    service = OctopusService(Octopus.from_dataset(dataset))
    response = service.execute(FindInfluencersRequest("data mining", k=5))
    assert response.ok  # errors come back as envelopes, never exceptions
    for node, label in zip(response.payload["seeds"],
                           response.payload["labels"]):
        print(label)

    # Requests and responses round-trip through JSON for logging/replay:
    wire = response.to_json()

Workloads (``repro.engine``) generate Zipf-skewed streams of typed requests
and report latency percentiles through the same service layer, and
``repro.server`` puts the envelopes on a socket: an HTTP server
(``octopus serve``) plus the :class:`~repro.server.OctopusClient` stub that
makes a remote server indistinguishable from a local service.
``repro.cluster`` shards the system across long-lived worker processes
behind the same executor surface (``octopus serve --executor cluster``);
shard count never changes answer bytes.
"""

from repro.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.cluster import ClusterCoordinator
from repro.core.octopus import Octopus, OctopusConfig
from repro.core.query import InfluencerResult, KeywordQuery, KeywordSuggestionResult
from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.social import SocialNetworkGenerator
from repro.engine.workload import (
    LatencyReport,
    QueryWorkload,
    WorkloadConfig,
    run_workload,
)
from repro.gateway import GatewayConfig, OctopusAsyncGateway, start_gateway
from repro.graph.digraph import GraphBuilder, SocialGraph
from repro.server import (
    OctopusClient,
    OctopusHTTPServer,
    OctopusRateLimitedError,
    OctopusTransportError,
    serve_in_background,
)
from repro.service import (
    CompleteRequest,
    ConcurrentOctopusService,
    ExplorePathsRequest,
    FindInfluencersRequest,
    TargetedInfluencersRequest,
    OctopusService,
    RadarRequest,
    ServiceError,
    ServiceRequest,
    ServiceResponse,
    StatsRequest,
    SuggestKeywordsRequest,
    request_from_dict,
    request_from_json,
)
from repro.topics.edges import TopicEdgeWeights
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary

__version__ = "1.2.0"

__all__ = [
    "Octopus",
    "OctopusConfig",
    "OctopusService",
    "ConcurrentOctopusService",
    "ClusterCoordinator",
    "OctopusHTTPServer",
    "OctopusAsyncGateway",
    "GatewayConfig",
    "start_gateway",
    "OctopusClient",
    "OctopusTransportError",
    "OctopusRateLimitedError",
    "serve_in_background",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "ServiceRequest",
    "FindInfluencersRequest",
    "TargetedInfluencersRequest",
    "SuggestKeywordsRequest",
    "ExplorePathsRequest",
    "CompleteRequest",
    "RadarRequest",
    "StatsRequest",
    "ServiceResponse",
    "ServiceError",
    "request_from_dict",
    "request_from_json",
    "KeywordQuery",
    "InfluencerResult",
    "KeywordSuggestionResult",
    "WorkloadConfig",
    "QueryWorkload",
    "LatencyReport",
    "run_workload",
    "CitationNetworkGenerator",
    "SocialNetworkGenerator",
    "SocialGraph",
    "GraphBuilder",
    "TopicEdgeWeights",
    "TopicModel",
    "Vocabulary",
    "__version__",
]

"""Graph traversal primitives shared by the propagation and path modules.

The central routine is :func:`max_probability_paths`: a Dijkstra variant on
edge *activation probabilities* (multiplicative, maximised) used to build the
maximum-influence arborescences of Section II-E and the MIA influence
maximization baseline.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.utils.validation import check_in_range, check_node_id

__all__ = ["bfs_reachable", "max_probability_paths"]


def bfs_reachable(
    graph: SocialGraph,
    source: int,
    *,
    reverse: bool = False,
    max_depth: Optional[int] = None,
) -> np.ndarray:
    """Nodes reachable from *source* (or reaching it, when *reverse*).

    Returns a sorted array of node ids including *source* itself.
    """
    check_node_id(source, graph.num_nodes, "source")
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[source] = True
    frontier = [source]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        next_frontier = []
        for node in frontier:
            neighbors = (
                graph.in_neighbors(node) if reverse else graph.out_neighbors(node)
            )
            for neighbor in neighbors:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    next_frontier.append(int(neighbor))
        frontier = next_frontier
        depth += 1
    return np.flatnonzero(visited)


def max_probability_paths(
    graph: SocialGraph,
    source: int,
    edge_probabilities: np.ndarray,
    *,
    threshold: float = 0.0,
    reverse: bool = False,
    max_nodes: Optional[int] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Highest-probability influence paths from (or to) *source*.

    Runs Dijkstra where a path's weight is the product of its edges'
    activation probabilities and larger is better.  Exploration stops below
    *threshold* (the MIA pruning parameter θ of [4]) or after *max_nodes*
    settled nodes.

    Parameters
    ----------
    edge_probabilities:
        Probability per edge id (out-CSR order).
    reverse:
        When true, paths *into* ``source`` are found (maximum influence
        in-arborescence); parents then point one hop closer to ``source``
        along the original edge direction.

    Returns
    -------
    (probabilities, parents):
        ``probabilities[v]`` is the best path probability from ``source`` to
        ``v`` (or ``v`` to ``source`` when reversed); ``parents[v]`` is the
        previous node on that best path (``source`` maps to itself).
    """
    check_node_id(source, graph.num_nodes, "source")
    check_in_range(threshold, 0.0, 1.0, "threshold")
    probabilities: Dict[int, float] = {source: 1.0}
    parents: Dict[int, int] = {source: source}
    settled = set()
    # Max-heap via negated probabilities.
    heap = [(-1.0, source)]
    while heap:
        negative_probability, node = heapq.heappop(heap)
        probability = -negative_probability
        if node in settled:
            continue
        settled.add(node)
        if max_nodes is not None and len(settled) >= max_nodes:
            break
        if reverse:
            neighbors = graph.in_neighbors(node)
            edge_ids = graph.in_edge_ids_of(node)
        else:
            neighbors = graph.out_neighbors(node)
            edge_ids = graph.out_edge_ids(node)
        for neighbor, edge_id in zip(neighbors, edge_ids):
            neighbor = int(neighbor)
            if neighbor in settled:
                continue
            candidate = probability * float(edge_probabilities[edge_id])
            if candidate < threshold or candidate <= 0.0:
                continue
            if candidate > probabilities.get(neighbor, 0.0):
                probabilities[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (-candidate, neighbor))
    # Drop frontier entries that were never settled but also never beat the
    # threshold check; entries in `probabilities` below threshold can only be
    # non-source nodes inserted before a better path displaced them.
    if threshold > 0.0:
        for node in [n for n, p in probabilities.items() if p < threshold]:
            del probabilities[node]
            del parents[node]
    return probabilities, parents

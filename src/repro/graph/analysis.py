"""Structural analysis helpers: PageRank, components, degree statistics.

PageRank provides the "individual influence ranking" strawman that Scenario 1
contrasts against influence maximization (IM finds *complementary* seeds,
ranking finds redundant ones); components and degree histograms are used by
the dataset generators' sanity checks and the benchmark reports.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.utils.validation import check_in_range, check_positive

__all__ = ["pagerank", "weakly_connected_components", "degree_histogram"]


def pagerank(
    graph: SocialGraph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> np.ndarray:
    """PageRank scores via power iteration on the CSR structure.

    Dangling nodes (zero out-degree) redistribute their mass uniformly.
    Returns a probability vector over nodes.
    """
    check_in_range(damping, 0.0, 1.0, "damping")
    check_positive(max_iterations, "max_iterations")
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    out_degree = graph.out_degree().astype(np.float64)
    dangling = out_degree == 0
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    sources = graph.edge_sources()
    targets = graph.out_targets
    for _ in range(max_iterations):
        contribution = np.where(dangling, 0.0, scores / np.maximum(out_degree, 1.0))
        incoming = np.zeros(n, dtype=np.float64)
        np.add.at(incoming, targets, contribution[sources])
        dangling_mass = scores[dangling].sum() / n
        updated = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        if np.abs(updated - scores).sum() < tolerance:
            scores = updated
            break
        scores = updated
    return scores / scores.sum()


def weakly_connected_components(graph: SocialGraph) -> np.ndarray:
    """Component label per node (labels are 0..c-1 in discovery order)."""
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            for neighbor in graph.out_neighbors(node):
                if labels[neighbor] == -1:
                    labels[neighbor] = current
                    stack.append(int(neighbor))
            for neighbor in graph.in_neighbors(node):
                if labels[neighbor] == -1:
                    labels[neighbor] = current
                    stack.append(int(neighbor))
        current += 1
    return labels


def degree_histogram(graph: SocialGraph, *, incoming: bool = True) -> Dict[int, int]:
    """Histogram mapping degree value to node count."""
    degrees = graph.in_degree() if incoming else graph.out_degree()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def top_nodes_by_degree(
    graph: SocialGraph, k: int, *, incoming: bool = True
) -> List[Tuple[int, int]]:
    """The *k* nodes with the largest (in- or out-) degree, as (node, degree)."""
    check_positive(k, "k")
    degrees = graph.in_degree() if incoming else graph.out_degree()
    k = min(k, graph.num_nodes)
    order = np.argsort(-degrees, kind="stable")[:k]
    return [(int(node), int(degrees[node])) for node in order]

"""Social-graph substrate: CSR digraph, generators, traversal, analysis."""

from repro.graph.analysis import (
    degree_histogram,
    pagerank,
    weakly_connected_components,
)
from repro.graph.digraph import GraphBuilder, SocialGraph
from repro.graph.generators import (
    citation_dag,
    erdos_renyi_digraph,
    preferential_attachment_digraph,
    small_world_digraph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.traversal import bfs_reachable, max_probability_paths

__all__ = [
    "GraphBuilder",
    "SocialGraph",
    "citation_dag",
    "erdos_renyi_digraph",
    "preferential_attachment_digraph",
    "small_world_digraph",
    "read_edge_list",
    "write_edge_list",
    "bfs_reachable",
    "max_probability_paths",
    "pagerank",
    "weakly_connected_components",
    "degree_histogram",
]

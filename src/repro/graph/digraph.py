"""Compressed-sparse-row directed social graph.

The graph is immutable once built.  Nodes are dense integers ``0..n-1`` with
optional string labels (user names).  Edges carry dense integer identifiers
``0..m-1`` defined by their position in the out-CSR; per-edge attributes such
as the topic-dependent activation probabilities (:mod:`repro.topics.edges`)
are stored as arrays indexed by edge id, which keeps query-time probability
evaluation a single vectorised operation.

Both the out-adjacency (for forward propagation) and the in-adjacency (for
reverse-reachable sampling and influencer indexes) are materialised.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ValidationError, check_node_id

__all__ = ["GraphBuilder", "SocialGraph"]


class SocialGraph:
    """Immutable directed graph in CSR form.

    Create instances via :meth:`from_edges` or :class:`GraphBuilder`.

    Attributes
    ----------
    num_nodes:
        Number of nodes ``n``.
    num_edges:
        Number of directed edges ``m``.
    out_offsets, out_targets:
        CSR arrays: targets of node ``u`` are
        ``out_targets[out_offsets[u]:out_offsets[u+1]]``; edge id equals the
        position in ``out_targets``.
    in_offsets, in_sources, in_edge_ids:
        CSC-style reverse adjacency; ``in_edge_ids`` maps each reverse slot to
        the corresponding out-CSR edge id so per-edge attributes can be read
        during reverse traversals.
    """

    def __init__(
        self,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_edge_ids: np.ndarray,
        labels: Optional[List[str]] = None,
    ) -> None:
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_sources = in_sources
        self.in_edge_ids = in_edge_ids
        self.num_nodes = len(out_offsets) - 1
        self.num_edges = len(out_targets)
        self._labels: Optional[List[str]] = labels
        self._label_index: Optional[Dict[str, int]] = None
        for array in (out_offsets, out_targets, in_offsets, in_sources, in_edge_ids):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Sequence[Tuple[int, int]],
        labels: Optional[Sequence[str]] = None,
        *,
        allow_duplicates: bool = False,
    ) -> "SocialGraph":
        """Build a graph from ``(source, target)`` pairs.

        Edge ids follow the order of *edges* grouped by source: the CSR sort
        is stable, so ``graph.edge_permutation`` is not needed — callers that
        must align per-edge attributes should use :class:`GraphBuilder`,
        which reports the final edge id for every insertion.

        Raises
        ------
        ValidationError
            On out-of-range endpoints, self-loops, or (unless
            *allow_duplicates*) duplicate edges.
        """
        if num_nodes < 0:
            raise ValidationError(f"num_nodes must be >= 0, got {num_nodes}")
        if labels is not None and len(labels) != num_nodes:
            raise ValidationError(
                f"labels has {len(labels)} entries for {num_nodes} nodes"
            )
        sources = np.empty(len(edges), dtype=np.int64)
        targets = np.empty(len(edges), dtype=np.int64)
        for index, (u, v) in enumerate(edges):
            sources[index] = u
            targets[index] = v
        if len(edges) > 0:
            if sources.min(initial=0) < 0 or targets.min(initial=0) < 0:
                raise ValidationError("edge endpoints must be non-negative")
            if max(sources.max(initial=-1), targets.max(initial=-1)) >= num_nodes:
                raise ValidationError(
                    "edge endpoint exceeds num_nodes; did you forget a node?"
                )
            if np.any(sources == targets):
                bad = int(np.flatnonzero(sources == targets)[0])
                raise ValidationError(
                    f"self-loop at edge {bad}: ({sources[bad]}, {targets[bad]})"
                )
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        if not allow_duplicates and len(edges) > 1:
            # Within each source block, duplicate targets mean duplicate edges.
            keys = sources * np.int64(num_nodes) + targets
            unique = np.unique(keys)
            if len(unique) != len(keys):
                raise ValidationError("duplicate edges are not allowed")
        out_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(out_offsets, sources + 1, 1)
        np.cumsum(out_offsets, out=out_offsets)

        in_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(in_offsets, targets + 1, 1)
        np.cumsum(in_offsets, out=in_offsets)
        reverse_order = np.argsort(targets, kind="stable")
        in_sources = sources[reverse_order]
        in_edge_ids = reverse_order.astype(np.int64)

        label_list = list(labels) if labels is not None else None
        return cls(
            out_offsets=out_offsets,
            out_targets=targets,
            in_offsets=in_offsets,
            in_sources=in_sources,
            in_edge_ids=in_edge_ids,
            labels=label_list,
        )

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------

    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of *node*'s out-edges (read-only view)."""
        return self.out_targets[self.out_offsets[node]:self.out_offsets[node + 1]]

    def out_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids of *node*'s out-edges."""
        return np.arange(
            self.out_offsets[node], self.out_offsets[node + 1], dtype=np.int64
        )

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of *node*'s in-edges (read-only view)."""
        return self.in_sources[self.in_offsets[node]:self.in_offsets[node + 1]]

    def in_edge_ids_of(self, node: int) -> np.ndarray:
        """Out-CSR edge ids of *node*'s in-edges."""
        return self.in_edge_ids[self.in_offsets[node]:self.in_offsets[node + 1]]

    def out_degree(self, node: Optional[int] = None):
        """Out-degree of *node*, or the full out-degree array."""
        degrees = np.diff(self.out_offsets)
        if node is None:
            return degrees
        return int(degrees[node])

    def in_degree(self, node: Optional[int] = None):
        """In-degree of *node*, or the full in-degree array."""
        degrees = np.diff(self.in_offsets)
        if node is None:
            return degrees
        return int(degrees[node])

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """Return ``(source, target)`` of *edge_id*."""
        if not 0 <= edge_id < self.num_edges:
            raise ValidationError(
                f"edge_id must be in [0, {self.num_edges}), got {edge_id}"
            )
        source = int(np.searchsorted(self.out_offsets, edge_id, side="right") - 1)
        return source, int(self.out_targets[edge_id])

    def edge_sources(self) -> np.ndarray:
        """Source node of every edge, indexed by edge id.

        Each source node spans a contiguous out-CSR block, so the array is
        one ``np.repeat`` over the out-degrees.
        """
        return np.repeat(
            np.arange(self.num_nodes, dtype=np.int64),
            np.diff(self.out_offsets),
        )

    def edge_id(self, source: int, target: int) -> int:
        """Edge id of ``(source, target)``.

        Raises :class:`ValidationError` if the edge does not exist.  With
        duplicate edges, returns the first matching id.
        """
        check_node_id(source, self.num_nodes, "source")
        check_node_id(target, self.num_nodes, "target")
        start, stop = self.out_offsets[source], self.out_offsets[source + 1]
        block = self.out_targets[start:stop]
        hits = np.flatnonzero(block == target)
        if len(hits) == 0:
            raise ValidationError(f"edge ({source}, {target}) does not exist")
        return int(start + hits[0])

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``(source, target)`` exists."""
        if not (0 <= source < self.num_nodes and 0 <= target < self.num_nodes):
            return False
        start, stop = self.out_offsets[source], self.out_offsets[source + 1]
        return bool(np.any(self.out_targets[start:stop] == target))

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(edge_id, source, target)`` in edge-id order."""
        for node in range(self.num_nodes):
            start, stop = self.out_offsets[node], self.out_offsets[node + 1]
            for edge_id in range(start, stop):
                yield edge_id, node, int(self.out_targets[edge_id])

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------

    @property
    def labels(self) -> Optional[List[str]]:
        """Node labels, or ``None`` when the graph is unlabelled."""
        return self._labels

    def label_of(self, node: int) -> str:
        """Label of *node*; falls back to ``"node-<id>"`` when unlabelled."""
        check_node_id(node, self.num_nodes)
        if self._labels is None:
            return f"node-{node}"
        return self._labels[node]

    def node_by_label(self, label: str) -> int:
        """Node id carrying *label* (labels must be unique to use this)."""
        if self._labels is None:
            raise ValidationError("graph has no labels")
        if self._label_index is None:
            index: Dict[str, int] = {}
            for node, name in enumerate(self._labels):
                if name in index:
                    raise ValidationError(
                        f"label {name!r} is not unique; lookup unsupported"
                    )
                index[name] = node
            self._label_index = index
        if label not in self._label_index:
            raise ValidationError(f"unknown label {label!r}")
        return self._label_index[label]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def reversed(self) -> "SocialGraph":
        """Return the graph with all edges reversed.

        Edge ids in the reversed graph do *not* correspond to edge ids in the
        original; use ``in_edge_ids_of`` for attribute-preserving reverse
        traversal instead when that matters.
        """
        edges = [(v, u) for _eid, u, v in self.edges()]
        return SocialGraph.from_edges(
            self.num_nodes, edges, labels=self._labels, allow_duplicates=True
        )

    def __repr__(self) -> str:
        return (
            f"SocialGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, "
            f"labelled={self._labels is not None})"
        )


class GraphBuilder:
    """Incremental constructor for :class:`SocialGraph`.

    Tracks insertion order and reports, after :meth:`build`, the CSR edge id
    assigned to each inserted edge (:attr:`edge_ids`), so per-edge attribute
    arrays created during construction can be permuted to edge-id order.
    """

    def __init__(self) -> None:
        self._labels: List[Optional[str]] = []
        self._edges: List[Tuple[int, int]] = []
        self._edge_set: set = set()
        self.edge_ids: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        """Nodes added so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Edges added so far."""
        return len(self._edges)

    def add_node(self, label: Optional[str] = None) -> int:
        """Add a node, returning its id."""
        self._labels.append(label)
        return len(self._labels) - 1

    def add_nodes(self, count: int) -> List[int]:
        """Add *count* unlabelled nodes, returning their ids."""
        start = len(self._labels)
        self._labels.extend([None] * count)
        return list(range(start, start + count))

    def add_edge(self, source: int, target: int) -> int:
        """Add edge ``(source, target)``; returns its insertion index.

        Duplicate edges and self-loops raise :class:`ValidationError`.
        """
        if source == target:
            raise ValidationError(f"self-loop ({source}, {target}) not allowed")
        for endpoint, name in ((source, "source"), (target, "target")):
            if not 0 <= endpoint < len(self._labels):
                raise ValidationError(
                    f"{name} {endpoint} is not a known node; add_node first"
                )
        if (source, target) in self._edge_set:
            raise ValidationError(f"duplicate edge ({source}, {target})")
        self._edge_set.add((source, target))
        self._edges.append((source, target))
        return len(self._edges) - 1

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge was already inserted."""
        return (source, target) in self._edge_set

    def build(self) -> SocialGraph:
        """Freeze into a :class:`SocialGraph`.

        After the call, :attr:`edge_ids` maps insertion index to CSR edge id.
        """
        labelled = any(label is not None for label in self._labels)
        labels: Optional[List[str]] = None
        if labelled:
            labels = [
                label if label is not None else f"node-{node}"
                for node, label in enumerate(self._labels)
            ]
        graph = SocialGraph.from_edges(len(self._labels), self._edges, labels)
        # Recover the stable-sort permutation the CSR construction applied.
        sources = np.array([u for u, _v in self._edges], dtype=np.int64)
        order = np.argsort(sources, kind="stable")
        edge_ids = np.empty(len(self._edges), dtype=np.int64)
        edge_ids[order] = np.arange(len(self._edges), dtype=np.int64)
        self.edge_ids = edge_ids
        return graph

"""Edge-list serialization for :class:`~repro.graph.digraph.SocialGraph`.

The format is a plain TSV: a header line ``# nodes <n>``, optional label
lines ``L <node> <label>``, then one ``<source>\\t<target>`` line per edge.
It round-trips node labels and edge-id order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.graph.digraph import SocialGraph
from repro.utils.validation import ValidationError

__all__ = ["write_edge_list", "read_edge_list"]

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: SocialGraph, path: PathLike) -> None:
    """Write *graph* to *path* in the library's TSV edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes {graph.num_nodes}\n")
        if graph.labels is not None:
            for node, label in enumerate(graph.labels):
                if "\t" in label or "\n" in label:
                    raise ValidationError(
                        f"label {label!r} contains tab/newline; cannot serialise"
                    )
                handle.write(f"L\t{node}\t{label}\n")
        for _edge_id, source, target in graph.edges():
            handle.write(f"{source}\t{target}\n")


def read_edge_list(path: PathLike) -> SocialGraph:
    """Read a graph previously written by :func:`write_edge_list`."""
    num_nodes: Optional[int] = None
    labels: List[str] = []
    edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) == 3 and parts[1] == "nodes":
                    num_nodes = int(parts[2])
                continue
            if line.startswith("L\t"):
                _tag, node_text, label = line.split("\t", 2)
                node = int(node_text)
                while len(labels) <= node:
                    labels.append("")
                labels[node] = label
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValidationError(
                    f"{path}:{line_number}: expected 'source\\ttarget', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    if num_nodes is None:
        raise ValidationError(f"{path}: missing '# nodes <n>' header")
    label_list: Optional[List[str]] = None
    if labels:
        while len(labels) < num_nodes:
            labels.append("")
        label_list = [
            label if label else f"node-{node}" for node, label in enumerate(labels)
        ]
    return SocialGraph.from_edges(num_nodes, edges, label_list)

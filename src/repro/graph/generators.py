"""Random social-graph generators.

These provide the structural substrates for the two demo networks:

* :func:`citation_dag` — time-ordered preferential-attachment DAG standing in
  for the ACMCite citation network (new papers cite earlier, popular papers).
* :func:`small_world_digraph` — Watts–Strogatz-style friendship graph for the
  QQ-like network (directed, reciprocal with given probability).
* :func:`preferential_attachment_digraph` / :func:`erdos_renyi_digraph` —
  generic power-law and uniform substrates for benchmarks.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_in_range, check_positive

__all__ = [
    "erdos_renyi_digraph",
    "preferential_attachment_digraph",
    "small_world_digraph",
    "citation_dag",
]


def erdos_renyi_digraph(
    num_nodes: int,
    edge_probability: float,
    seed: SeedLike = None,
) -> SocialGraph:
    """G(n, p) digraph without self-loops.

    Sampled by drawing, for each source, a binomial number of distinct
    targets — O(expected edges) rather than O(n²) bookkeeping per node pair
    for sparse graphs.
    """
    check_positive(num_nodes, "num_nodes")
    check_in_range(edge_probability, 0.0, 1.0, "edge_probability")
    rng = as_generator(seed)
    edges: List[Tuple[int, int]] = []
    if num_nodes > 1 and edge_probability > 0.0:
        for source in range(num_nodes):
            count = rng.binomial(num_nodes - 1, edge_probability)
            if count == 0:
                continue
            others = rng.choice(num_nodes - 1, size=count, replace=False)
            for offset in others:
                target = int(offset) if offset < source else int(offset) + 1
                edges.append((source, target))
    return SocialGraph.from_edges(num_nodes, edges)


def preferential_attachment_digraph(
    num_nodes: int,
    out_degree: int,
    seed: SeedLike = None,
) -> SocialGraph:
    """Directed Barabási–Albert graph: power-law in-degrees.

    Each new node adds edges to ``min(out_degree, t)`` distinct earlier nodes
    chosen with probability proportional to ``in_degree + 1``.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(out_degree, "out_degree")
    rng = as_generator(seed)
    edges: List[Tuple[int, int]] = []
    # attachment pool holds one entry per (in-degree + 1) unit.
    pool: List[int] = [0]
    for node in range(1, num_nodes):
        wanted = min(out_degree, node)
        chosen: set = set()
        attempts = 0
        while len(chosen) < wanted and attempts < 50 * wanted:
            target = pool[int(rng.integers(0, len(pool)))]
            chosen.add(target)
            attempts += 1
        # Fill any shortfall (possible on tiny pools) uniformly.
        while len(chosen) < wanted:
            chosen.add(int(rng.integers(0, node)))
        for target in chosen:
            edges.append((node, target))
            pool.append(target)
        pool.append(node)
    return SocialGraph.from_edges(num_nodes, edges)


def small_world_digraph(
    num_nodes: int,
    neighbors: int,
    rewire_probability: float,
    reciprocity: float = 0.6,
    seed: SeedLike = None,
) -> SocialGraph:
    """Watts–Strogatz-style friendship digraph.

    Starts from a ring lattice where each node points at its *neighbors*
    clockwise successors, rewires each edge's target with probability
    *rewire_probability*, then adds the reverse of each edge with probability
    *reciprocity* (friendship in QQ-like networks is mostly mutual).
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(neighbors, "neighbors")
    check_in_range(rewire_probability, 0.0, 1.0, "rewire_probability")
    check_in_range(reciprocity, 0.0, 1.0, "reciprocity")
    if neighbors >= num_nodes:
        raise ValidationError(
            f"neighbors ({neighbors}) must be < num_nodes ({num_nodes})"
        )
    rng = as_generator(seed)
    edge_set = set()
    for source in range(num_nodes):
        for hop in range(1, neighbors + 1):
            target = (source + hop) % num_nodes
            if rng.random() < rewire_probability:
                for _ in range(10):
                    candidate = int(rng.integers(0, num_nodes))
                    if candidate != source and (source, candidate) not in edge_set:
                        target = candidate
                        break
            if target != source and (source, target) not in edge_set:
                edge_set.add((source, target))
    for source, target in list(edge_set):
        if (target, source) not in edge_set and rng.random() < reciprocity:
            edge_set.add((target, source))
    return SocialGraph.from_edges(num_nodes, sorted(edge_set))


def citation_dag(
    num_nodes: int,
    citations_per_node: int,
    recency_bias: float = 0.3,
    seed: SeedLike = None,
) -> SocialGraph:
    """Time-ordered citation DAG with preferential attachment and recency.

    Node ids are publication order.  Node ``t`` cites up to
    *citations_per_node* earlier nodes; each citation picks, with probability
    *recency_bias*, a recent node (uniform over the latest ``sqrt(t)+1``) and
    otherwise a popular node (proportional to citations received + 1).  Edges
    point from the *cited* (earlier, influencing) node to the *citing* node,
    matching the influence direction used by OCTOPUS: influence flows from
    the cited author to the citing author.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(citations_per_node, "citations_per_node")
    check_in_range(recency_bias, 0.0, 1.0, "recency_bias")
    rng = as_generator(seed)
    edges: List[Tuple[int, int]] = []
    pool: List[int] = [0]
    for node in range(1, num_nodes):
        wanted = min(citations_per_node, node)
        cited: set = set()
        window = int(np.sqrt(node)) + 1
        attempts = 0
        while len(cited) < wanted and attempts < 50 * wanted:
            if rng.random() < recency_bias:
                candidate = int(rng.integers(max(0, node - window), node))
            else:
                candidate = pool[int(rng.integers(0, len(pool)))]
            cited.add(candidate)
            attempts += 1
        while len(cited) < wanted:
            cited.add(int(rng.integers(0, node)))
        for earlier in cited:
            edges.append((earlier, node))
            pool.append(earlier)
        pool.append(node)
    return SocialGraph.from_edges(num_nodes, edges)

"""Personalized influential keywords suggestion (§II-D, reference [6]).

Given a target user, find the k-sized keyword set maximising the user's
topic-aware influence spread — the user's "selling points".  The problem is
NP-hard and NP-hard to approximate within any constant ratio [6], so the
suggester combines:

* a **sampling-based estimator** — the :class:`InfluencerIndex` evaluates
  any candidate keyword set's γ against fixed coupled worlds, so candidate
  comparisons are noise-free;
* **candidate pruning** — candidates come from the target's own action
  vocabulary, then only the ``candidate_limit`` best singletons (evaluated
  in one vectorised pass) enter the combinatorial search;
* **greedy with lazy re-evaluation** for the k-set search, with optional
  exhaustive enumeration for small candidate pools (tests compare both);
* an optional **topic-consistency filter** restricting the pool to the
  dominant topic of the best singleton keyword, mirroring [6]'s consistency
  requirement (the Bayesian posterior already penalises incoherent sets:
  the product over keywords flattens γ when topics disagree).
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.influencer_index import InfluencerIndex
from repro.core.query import KeywordSuggestionResult
from repro.topics.model import TopicModel
from repro.utils.heap import LazyGreedyQueue
from repro.utils.validation import ValidationError, check_positive

__all__ = ["KeywordSuggester"]


class KeywordSuggester:
    """Suggests the most influential keyword set for a target user."""

    def __init__(
        self,
        topic_model: TopicModel,
        influencer_index: InfluencerIndex,
        user_keywords: Dict[int, List[int]],
        *,
        candidate_limit: int = 30,
        consistency_filter: bool = False,
    ) -> None:
        check_positive(candidate_limit, "candidate_limit")
        self.topic_model = topic_model
        self.index = influencer_index
        self.graph = influencer_index.graph
        self.user_keywords = user_keywords
        self.candidate_limit = candidate_limit
        self.consistency_filter = consistency_filter

    # ------------------------------------------------------------------

    def candidates_for(self, target: int) -> List[int]:
        """Candidate word ids for *target* (their own action vocabulary)."""
        words = self.user_keywords.get(target, [])
        # Deduplicate preserving frequency order: more-used words first.
        counts: Dict[int, int] = {}
        for word in words:
            counts[word] = counts.get(word, 0) + 1
        return sorted(counts, key=lambda w: (-counts[w], w))

    def suggest(
        self,
        target: int,
        k: int = 3,
        *,
        method: str = "greedy",
    ) -> KeywordSuggestionResult:
        """Suggest a k-sized influential keyword set for *target*.

        ``method`` is ``"greedy"`` (lazy greedy, default) or ``"exact"``
        (exhaustive over the pruned candidate pool; exponential in *k*, for
        validation only).
        """
        check_positive(k, "k")
        if method not in ("greedy", "exact"):
            raise ValidationError(f"method must be 'greedy' or 'exact', got {method!r}")
        started = time.perf_counter()
        candidates = self.candidates_for(target)
        if not candidates:
            raise ValidationError(
                f"user {target} has no recorded keywords to suggest from"
            )

        singleton_spreads, pool = self._prune_candidates(target, candidates)
        if self.consistency_filter and len(pool) > 1:
            pool = self._filter_consistent(pool, singleton_spreads)

        if method == "exact":
            keywords, spread, evaluations = self._exact_search(target, pool, k)
        else:
            keywords, spread, evaluations = self._greedy_search(
                target, pool, k, singleton_spreads
            )

        gamma = self.topic_model.keyword_topic_posterior(keywords)
        vocabulary = self.topic_model.vocabulary
        per_keyword = {
            vocabulary.word_of(word): float(singleton_spreads[word])
            for word in pool
        }
        elapsed = time.perf_counter() - started
        return KeywordSuggestionResult(
            target=target,
            target_label=self.graph.label_of(target),
            keywords=[vocabulary.word_of(word) for word in keywords],
            spread=spread,
            gamma=gamma,
            per_keyword_spread=per_keyword,
            elapsed_seconds=elapsed,
            statistics={
                "candidates_total": float(len(candidates)),
                "candidates_after_pruning": float(len(pool)),
                "set_evaluations": float(evaluations),
            },
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prune_candidates(
        self, target: int, candidates: List[int]
    ) -> Tuple[Dict[int, float], List[int]]:
        """Singleton spreads for all candidates; keep the best ones."""
        gammas = np.stack(
            [
                self.topic_model.keyword_topic_posterior([word])
                for word in candidates
            ]
        )
        spreads = self.index.estimate_user_spread_many(target, gammas)
        singleton = {word: float(s) for word, s in zip(candidates, spreads)}
        order = sorted(candidates, key=lambda w: (-singleton[w], w))
        return singleton, order[: self.candidate_limit]

    def _filter_consistent(
        self, pool: List[int], singleton_spreads: Dict[int, float]
    ) -> List[int]:
        """Keep candidates sharing the best singleton's dominant topic."""
        best = pool[0]
        anchor_topic = self.topic_model.dominant_topic([best])
        filtered = [
            word
            for word in pool
            if self.topic_model.dominant_topic([word]) == anchor_topic
        ]
        return filtered if filtered else [best]

    def _spread_of_set(self, target: int, words: Sequence[int]) -> float:
        gamma = self.topic_model.keyword_topic_posterior(list(words))
        return self.index.estimate_user_spread(target, gamma)

    def _greedy_search(
        self,
        target: int,
        pool: List[int],
        k: int,
        singleton_spreads: Dict[int, float],
    ) -> Tuple[List[int], float, int]:
        """Lazy greedy over keywords.

        The objective is *not* submodular in the keyword set (adding a word
        reshapes γ), so stale queue entries are re-evaluated and the loop
        additionally guards against negative "gains": a word that lowers the
        current set's spread is skipped, and the search stops early when no
        remaining word improves it.
        """
        selected: List[int] = []
        current = 0.0
        evaluations = 0
        queue: LazyGreedyQueue = LazyGreedyQueue()
        for word in pool:
            queue.push(word, singleton_spreads[word])
        queue.mark_all_stale()
        skipped: List[Tuple[int, float]] = []
        while len(selected) < k and len(queue) > 0:
            word, gain, fresh = queue.pop_best()
            # Round 0: the cached singleton spreads are exact gains already.
            if fresh or not selected:
                # A strictly negative gain means the keyword would *reduce*
                # the set's spread (γ reshaping is not monotone) — skip it.
                # Zero-gain keywords are kept so the set reaches size k.
                if gain < 0.0 and selected:
                    skipped.append((word, gain))
                    continue
                selected.append(word)
                current += gain
                queue.mark_all_stale()
                skipped.clear()
            else:
                value = self._spread_of_set(target, selected + [word])
                evaluations += 1
                queue.push(word, value - current)
        spread = self._spread_of_set(target, selected) if selected else 0.0
        evaluations += 1
        return selected, spread, evaluations

    def _exact_search(
        self, target: int, pool: List[int], k: int
    ) -> Tuple[List[int], float, int]:
        """Exhaustive search over all k-subsets of the pruned pool."""
        best_words: List[int] = []
        best_spread = -1.0
        evaluations = 0
        size = min(k, len(pool))
        # Evaluate all subsets of exactly `size`; also smaller sizes, since a
        # smaller coherent set can beat a larger incoherent one.
        for subset_size in range(1, size + 1):
            subsets = list(itertools.combinations(pool, subset_size))
            gammas = np.stack(
                [
                    self.topic_model.keyword_topic_posterior(list(subset))
                    for subset in subsets
                ]
            )
            spreads = self.index.estimate_user_spread_many(target, gammas)
            evaluations += len(subsets)
            for subset, spread in zip(subsets, spreads):
                if spread > best_spread:
                    best_spread = float(spread)
                    best_words = list(subset)
        return best_words, best_spread, evaluations

"""The best-effort framework for online keyword-based IM (§II-C).

"We introduce a best-effort framework that estimates an upper bound of the
influence spread for each user and then preferentially computes the exact
influence spread for the users with larger upper bounds, so as to prune
insignificant users."

The framework is a CELF loop whose queue is *initialised with upper bounds*
instead of exact singleton spreads: a candidate is only handed to the exact
spread oracle when its bound (or a previously computed exact gain) floats to
the top of the queue.  With a sound bound estimator the selected seeds match
what lazy greedy over the oracle would select, while evaluating only a small
prefix of the user ranking — the pruning-power statistic benchmark E2
reports.

Optionally a *warm start* (e.g. a topic-sample seed set, §II-C's
topic-sample-based algorithm) supplies a feasible lower bound used to drop
candidates whose upper bound cannot beat the per-seed average of the warm
start — the "use the samples to better estimate upper and lower bounds for
pruning" device of [3].
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.im.base import IMResult
from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
    SpreadEstimator,
)
from repro.propagation.kernels import DEFAULT_RR_KERNEL
from repro.topics.edges import TopicEdgeWeights
from repro.utils.heap import LazyGreedyQueue
from repro.utils.rng import SeedLike
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_positive,
    check_simplex,
)

__all__ = ["BestEffortKeywordIM"]

OracleFactory = Callable[[SocialGraph, np.ndarray], SpreadEstimator]


def _base_entropy(seed: SeedLike) -> int:
    """Collapse any seed form into one integer entropy value."""
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, dtype=np.uint64)[0])
    if seed is None:
        return int(np.random.SeedSequence().generate_state(1)[0])
    return int(seed)


def _query_rng(entropy: int, probabilities: np.ndarray) -> np.random.Generator:
    """Per-query generator keyed by (engine seed, query probabilities).

    Identical queries draw identical randomness regardless of what ran
    before them, so answers are reproducible: a cached response, a replayed
    log entry and a batched duplicate all equal a fresh computation.
    """
    digest = hashlib.blake2b(
        np.ascontiguousarray(probabilities, dtype=np.float64).tobytes(),
        digest_size=8,
    ).digest()
    return np.random.default_rng(
        np.random.SeedSequence([entropy, int.from_bytes(digest, "little")])
    )


def _monte_carlo_factory(num_samples: int, seed: SeedLike) -> OracleFactory:
    entropy = _base_entropy(seed)

    def factory(graph: SocialGraph, probabilities: np.ndarray) -> SpreadEstimator:
        return MonteCarloSpreadEstimator(
            graph,
            probabilities,
            num_samples=num_samples,
            seed=_query_rng(entropy, probabilities),
        )

    return factory


def _rr_set_factory(
    num_sets: int, seed: SeedLike, backend=None, kernel: str = DEFAULT_RR_KERNEL
) -> OracleFactory:
    entropy = _base_entropy(seed)

    def factory(graph: SocialGraph, probabilities: np.ndarray) -> SpreadEstimator:
        return RRSetSpreadEstimator(
            graph,
            probabilities,
            num_sets=num_sets,
            seed=_query_rng(entropy, probabilities),
            backend=backend,
            kernel=kernel,
        )

    return factory


class BestEffortKeywordIM:
    """Online keyword IM: bound-driven lazy greedy with a pluggable oracle.

    Parameters
    ----------
    edge_weights:
        The topic-aware edge probabilities.
    bound_estimator:
        Any :class:`~repro.core.bounds.UpperBoundEstimator`.
    oracle:
        ``"mc"`` (Monte-Carlo, default), ``"ris"`` (fixed RR-set collection
        per query, deterministic within the query), or a custom factory
        ``(graph, edge_probabilities) -> SpreadEstimator``.
    num_samples / num_sets:
        Budget of the built-in oracles.
    rr_kernel:
        Sampling kernel of the ``"ris"`` oracle (vectorized / legacy).
    candidate_limit:
        Evaluate at most this many distinct candidates per query (best-effort
        degradation for hard latency budgets); ``None`` = unlimited.
    """

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        bound_estimator,
        *,
        oracle: "str | OracleFactory" = "mc",
        num_samples: int = 100,
        num_sets: int = 2000,
        candidate_limit: Optional[int] = None,
        seed: SeedLike = None,
        backend=None,
        rr_kernel: str = DEFAULT_RR_KERNEL,
    ) -> None:
        check_positive(num_samples, "num_samples")
        check_positive(num_sets, "num_sets")
        if candidate_limit is not None:
            check_positive(candidate_limit, "candidate_limit")
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        self.bound_estimator = bound_estimator
        self.candidate_limit = candidate_limit
        if oracle == "mc":
            self._oracle_factory: OracleFactory = _monte_carlo_factory(
                num_samples, seed
            )
        elif oracle == "ris":
            self._oracle_factory = _rr_set_factory(
                num_sets, seed, backend, rr_kernel
            )
        elif callable(oracle):
            self._oracle_factory = oracle
        else:
            raise ValidationError(
                f"oracle must be 'mc', 'ris' or a factory, got {oracle!r}"
            )

    # ------------------------------------------------------------------

    def query(
        self,
        gamma: np.ndarray,
        k: int,
        *,
        warm_start: Optional[Sequence[int]] = None,
        prune_ratio: float = 1.0,
    ) -> IMResult:
        """Answer a keyword IM query for topic distribution γ.

        Parameters
        ----------
        warm_start:
            A feasible seed set (e.g. from the topic-sample index).  Its
            spread under γ becomes a lower bound ``L``; candidates with
            upper bound below ``prune_ratio · L / k`` are dropped before any
            exact evaluation.
        prune_ratio:
            Aggressiveness of warm-start pruning in ``[0, 1]``; 1 means
            "prune anything that cannot beat the warm start's per-seed
            average".

        Returns an :class:`~repro.im.base.IMResult` whose ``statistics``
        record ``exact_evaluations``, ``candidates_considered`` and
        ``pruned_by_warm_start``.
        """
        gamma = check_simplex(gamma, "gamma")
        check_positive(k, "k")
        check_in_range(prune_ratio, 0.0, 1.0, "prune_ratio")
        probabilities = self.edge_weights.edge_probabilities(gamma)
        oracle = self._oracle_factory(self.graph, probabilities)

        bounds = np.asarray(self.bound_estimator.bounds(gamma), dtype=np.float64)
        if bounds.shape != (self.graph.num_nodes,):
            raise ValidationError(
                "bound estimator returned wrong shape "
                f"{bounds.shape}, expected ({self.graph.num_nodes},)"
            )

        pruned_by_warm_start = 0
        threshold = -np.inf
        warm_spread = 0.0
        if warm_start is not None and len(warm_start) > 0:
            warm_spread = oracle.spread(list(warm_start))
            threshold = prune_ratio * warm_spread / k

        order = np.argsort(-bounds, kind="stable")
        if self.candidate_limit is not None:
            order = order[: self.candidate_limit]

        queue: LazyGreedyQueue = LazyGreedyQueue()
        for node in order:
            bound = float(bounds[node])
            if bound < threshold:
                # Bounds are sorted; everything after is also below threshold.
                pruned_by_warm_start += len(order) - len(queue)
                break
            queue.push(int(node), bound)
        queue.mark_all_stale()

        seeds: List[int] = []
        gains: List[float] = []
        current_spread = 0.0
        exact_evaluations = 1 if warm_start else 0
        while len(seeds) < k and len(queue) > 0:
            node, gain, fresh = queue.pop_best()
            if fresh:
                seeds.append(node)
                gains.append(gain)
                current_spread += gain
                queue.mark_all_stale()
            else:
                exact = oracle.spread(seeds + [node]) - current_spread
                exact_evaluations += 1
                queue.push(node, max(exact, 0.0))

        final_spread = oracle.spread(seeds) if seeds else 0.0
        exact_evaluations += 1 if seeds else 0
        statistics = {
            "exact_evaluations": float(exact_evaluations),
            "candidates_considered": float(len(order)),
            "pruned_by_warm_start": float(pruned_by_warm_start),
            "warm_start_spread": float(warm_spread),
        }
        return IMResult(
            seeds=seeds,
            spread=final_spread,
            marginal_gains=gains,
            evaluations=exact_evaluations,
            statistics=statistics,
        )

"""Targeted keyword influence maximization (extension; reference [7]).

The paper's QQ deployment pushes ads for *viral marketing*; its reference
[7] (Li, Zhang, Tan — "Real-time targeted influence maximization for online
advertisements", PVLDB 2015) refines the objective: only users relevant to
the advertised topic should count toward the spread.  This module
implements that extension on top of the OCTOPUS substrates:

* the **audience** is a non-negative weight per user — either supplied
  explicitly, or derived from the action logs (users who used the query's
  keywords, weighted by frequency) via the inverted index;
* the objective becomes the *weighted* spread
  ``σ_w(S) = Σ_v w_v · P(S activates v)``;
* seeds are selected by **weighted reverse-reachable sampling**: RR-set
  roots are drawn proportionally to audience weight, so greedy maximum
  coverage optimises the weighted objective with the usual
  ``(1 − 1/e − ε)`` guarantee (the estimator is unbiased:
  ``σ̂_w(S) = W_total · covered / num_sets``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.im.base import IMResult
from repro.index.inverted import InvertedIndex
from repro.propagation.kernels import DEFAULT_RR_KERNEL, check_rr_kernel
from repro.propagation.rrsets import RRSetCollection
from repro.topics.edges import TopicEdgeWeights

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.backend.base import ExecutionBackend
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    ValidationError,
    check_positive,
    check_simplex,
)

__all__ = ["TargetedKeywordIM"]


class TargetedKeywordIM:
    """Keyword IM restricted to a weighted target audience."""

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        inverted_index: Optional[InvertedIndex] = None,
        *,
        num_sets: int = 2000,
        seed: SeedLike = None,
        backend: Optional["ExecutionBackend"] = None,
        rr_kernel: str = DEFAULT_RR_KERNEL,
    ) -> None:
        check_positive(num_sets, "num_sets")
        check_rr_kernel(rr_kernel)
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        self.inverted_index = inverted_index
        self.num_sets = num_sets
        self.backend = backend
        self.rr_kernel = rr_kernel
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    # Audience derivation
    # ------------------------------------------------------------------

    def audience_for_keywords(self, word_ids: Sequence[int]) -> np.ndarray:
        """Audience weights from the inverted index.

        A user's weight is their total use count of the query keywords —
        the users demonstrably interested in the topic.  Requires the
        engine to have been built with an inverted index.
        """
        if self.inverted_index is None:
            raise ValidationError(
                "no inverted index available; pass an explicit audience"
            )
        if not word_ids:
            raise ValidationError("word_ids must not be empty")
        weights = np.zeros(self.graph.num_nodes, dtype=np.float64)
        for word_id in word_ids:
            for user, count in self.inverted_index.users_of(int(word_id)):
                weights[user] += count
        return weights

    def _check_audience(self, audience: np.ndarray) -> np.ndarray:
        weights = np.asarray(audience, dtype=np.float64)
        if weights.shape != (self.graph.num_nodes,):
            raise ValidationError(
                f"audience must have shape ({self.graph.num_nodes},), "
                f"got {weights.shape}"
            )
        if np.any(weights < 0):
            raise ValidationError("audience weights must be non-negative")
        if weights.sum() <= 0:
            raise ValidationError("audience is empty (all weights zero)")
        return weights

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(
        self,
        gamma: np.ndarray,
        k: int,
        audience: np.ndarray,
        *,
        num_sets: Optional[int] = None,
    ) -> IMResult:
        """Select *k* seeds maximising the audience-weighted spread under γ.

        Returns an :class:`IMResult` whose ``spread`` is in audience-weight
        units (e.g. "expected weighted audience activations").
        """
        gamma = check_simplex(gamma, "gamma")
        check_positive(k, "k")
        weights = self._check_audience(audience)
        num_sets = num_sets if num_sets is not None else self.num_sets
        check_positive(num_sets, "num_sets")

        probabilities = self.edge_weights.edge_probabilities(gamma)
        total_weight = float(weights.sum())
        root_distribution = weights / total_weight
        roots = self._rng.choice(
            self.graph.num_nodes, size=num_sets, p=root_distribution
        )
        # Audience-weighted roots are drawn above from the engine stream;
        # the sampling itself runs on the configured execution backend
        # (per-chunk spawned sub-streams keep it deterministic per query).
        collection = RRSetCollection.sample(
            self.graph,
            probabilities,
            num_sets,
            seed=self._rng,
            roots=[int(root) for root in roots],
            backend=self.backend,
            kernel=self.rr_kernel,
        )
        seeds, covered_fraction_spread = collection.greedy_max_cover(k)
        # greedy_max_cover scales by n; rescale to audience-weight units.
        covered_fraction = covered_fraction_spread / self.graph.num_nodes
        weighted_spread = total_weight * covered_fraction
        return IMResult(
            seeds=seeds,
            spread=weighted_spread,
            marginal_gains=[],
            evaluations=num_sets,
            statistics={
                "audience_total_weight": total_weight,
                "audience_users": float(np.count_nonzero(weights)),
                "covered_fraction": covered_fraction,
                "num_rr_sets": float(num_sets),
            },
        )

    def estimate_weighted_spread(
        self,
        seeds: Sequence[int],
        gamma: np.ndarray,
        audience: np.ndarray,
        *,
        num_samples: int = 500,
        seed: SeedLike = None,
    ) -> float:
        """Monte-Carlo reference for the weighted spread of *seeds*."""
        gamma = check_simplex(gamma, "gamma")
        weights = self._check_audience(audience)
        check_positive(num_samples, "num_samples")
        from repro.propagation.ic import simulate_cascade

        probabilities = self.edge_weights.edge_probabilities(gamma)
        rng = as_generator(seed)
        total = 0.0
        for _ in range(num_samples):
            trace = simulate_cascade(self.graph, probabilities, seeds, rng)
            total += sum(weights[node] for node in trace.activated)
        return total / num_samples

"""OCTOPUS's primary contribution: online topic-aware influence analysis.

* :mod:`repro.core.query` — keyword query / result types.
* :mod:`repro.core.bounds` — the three upper-bound estimators of §II-C.
* :mod:`repro.core.besteffort` — the best-effort keyword-IM framework.
* :mod:`repro.core.topic_samples` — the topic-sample-based algorithm.
* :mod:`repro.core.influencer_index` — §II-D's sampled influencer index.
* :mod:`repro.core.suggestion` — personalized influential keyword suggestion.
* :mod:`repro.core.paths` — §II-E influential-path exploration.
* :mod:`repro.core.octopus` — the system facade tying everything together.
"""

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import (
    LocalGraphBound,
    NeighborhoodBound,
    PrecomputationBound,
    UpperBoundEstimator,
    walk_sum_bounds,
)
from repro.core.influencer_index import InfluencerIndex
from repro.core.octopus import Octopus, OctopusConfig
from repro.core.paths import InfluencePathExplorer, PathTree
from repro.core.query import (
    InfluencerResult,
    KeywordQuery,
    KeywordSuggestionResult,
)
from repro.core.suggestion import KeywordSuggester
from repro.core.topic_samples import TopicSampleIndex

__all__ = [
    "BestEffortKeywordIM",
    "UpperBoundEstimator",
    "PrecomputationBound",
    "LocalGraphBound",
    "NeighborhoodBound",
    "walk_sum_bounds",
    "InfluencerIndex",
    "Octopus",
    "OctopusConfig",
    "InfluencePathExplorer",
    "PathTree",
    "KeywordQuery",
    "InfluencerResult",
    "KeywordSuggestionResult",
    "KeywordSuggester",
    "TopicSampleIndex",
]

"""The topic-sample-based algorithm of §II-C.

"We devise a topic-sample-based algorithm that pre-computes seed sets for
some offline-sampled topic distributions.  Then, we use the samples to better
estimate upper and lower bounds for pruning instead of directly answering the
query, which also achieves theoretical guarantees."

Offline, the index draws topic distributions from a sparse Dirichlet prior
(real keyword queries concentrate on few topics), solves IM for each with RR
sets, and stores the seed sets with their spreads.  Online, a query γ is
matched to its nearest sample γ_s:

* when the *coupling gap* ``Λ(γ, γ_s) = n · Σ_z |γ_z − γ_{s,z}| · T_z``
  (with ``T_z = Σ_e pp^z_e``; see below) is small relative to the cached
  spread, the cached seed set is returned directly — its spread under γ is
  within Λ of the cached value, and OPT_γ is within Λ of OPT_{γ_s}, giving
  the answer a ``(1 − 1/e − ε)·OPT_γ − 2Λ`` guarantee;
* otherwise the cached seed set *warm-starts* the best-effort framework,
  pruning every candidate whose upper bound cannot beat the warm start.

Coupling gap derivation: sample one live-edge world per query pair by shared
uniform thresholds; the worlds differ only if some edge's liveness differs,
which has probability ``≤ Σ_e |p_e(γ) − p_e(γ_s)| ≤ Σ_z |γ_z − γ_{s,z}| T_z``
(union bound); when the worlds coincide the spreads are equal, otherwise
they differ by at most ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.besteffort import BestEffortKeywordIM
from repro.im.base import IMResult
from repro.im.ris import ris_im
from repro.propagation.kernels import DEFAULT_RR_KERNEL, check_rr_kernel
from repro.topics.edges import TopicEdgeWeights
from repro.topics.priors import sample_topic_distributions
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_positive,
    check_simplex,
)

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.backend.base import ExecutionBackend

__all__ = ["TopicSample", "TopicSampleIndex"]


@dataclass
class TopicSample:
    """One precomputed sample: its distribution, seeds and spread per k."""

    gamma: np.ndarray
    seeds_by_k: List[List[int]]
    spreads_by_k: List[float]

    def seeds(self, k: int) -> List[int]:
        """Cached seed set of size ≤ *k* (prefix of the greedy order)."""
        index = min(k, len(self.seeds_by_k)) - 1
        return list(self.seeds_by_k[index])

    def spread(self, k: int) -> float:
        """Cached spread of the size-*k* (or largest available) seed set."""
        index = min(k, len(self.spreads_by_k)) - 1
        return self.spreads_by_k[index]


def _precompute_sample(
    edge_weights: TopicEdgeWeights,
    gamma: np.ndarray,
    max_k: int,
    num_rr_sets: int,
    rng: np.random.Generator,
    kernel: str = DEFAULT_RR_KERNEL,
) -> TopicSample:
    """Precompute one topic sample: IM seeds plus per-prefix spreads.

    Module-level so parallel index builds can ship it to worker processes;
    each call consumes only its own *rng* stream, which is what makes the
    partitioned build order-independent.
    """
    graph = edge_weights.graph
    probabilities = edge_weights.edge_probabilities(gamma)
    result = ris_im(
        graph, probabilities, max_k, num_sets=num_rr_sets, seed=rng, kernel=kernel
    )
    seeds_by_k: List[List[int]] = []
    spreads_by_k: List[float] = []
    # RR greedy returns nested prefixes; record each prefix's spread from
    # the same collection for consistency.
    from repro.propagation.rrsets import RRSetCollection  # local: avoid cycle

    collection = RRSetCollection.sample(
        graph, probabilities, max(num_rr_sets // 2, 1), rng, kernel=kernel
    )
    for k in range(1, len(result.seeds) + 1):
        prefix = result.seeds[:k]
        seeds_by_k.append(prefix)
        spreads_by_k.append(collection.estimate_spread(prefix))
    if not seeds_by_k:
        raise ValidationError("sample precomputation selected no seeds")
    return TopicSample(
        gamma=gamma, seeds_by_k=seeds_by_k, spreads_by_k=spreads_by_k
    )


def _precompute_sample_chunk(task) -> List[TopicSample]:
    """Backend chunk worker: precompute a slice of the sample list."""
    edge_weights, gammas, max_k, num_rr_sets, seed_sequences, kernel = task
    return [
        _precompute_sample(
            edge_weights,
            gamma,
            max_k,
            num_rr_sets,
            np.random.default_rng(child),
            kernel,
        )
        for gamma, child in zip(gammas, seed_sequences)
    ]


class TopicSampleIndex:
    """Offline-sampled topic distributions with precomputed seed sets."""

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        num_samples: int = 32,
        max_k: int = 20,
        *,
        concentration: float = 0.3,
        num_rr_sets: int = 4000,
        seed: SeedLike = None,
        backend: Optional["ExecutionBackend"] = None,
        rr_kernel: str = DEFAULT_RR_KERNEL,
    ) -> None:
        check_positive(num_samples, "num_samples")
        check_positive(max_k, "max_k")
        check_rr_kernel(rr_kernel)
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        self.max_k = max_k
        rng = as_generator(seed)
        gammas = sample_topic_distributions(
            edge_weights.num_topics, num_samples, concentration, rng
        )
        # Per-topic total edge probability mass, the T_z of the coupling gap.
        self.topic_mass = edge_weights.weights.sum(axis=0)
        self.samples: List[TopicSample] = []
        if backend is None:
            # Historical sequential build: one stream shared across samples
            # (with the legacy kernel, bit-identical to earlier releases).
            for gamma in gammas:
                self.samples.append(
                    _precompute_sample(
                        self.edge_weights,
                        gamma,
                        self.max_k,
                        num_rr_sets,
                        rng,
                        rr_kernel,
                    )
                )
        else:
            # Partitioned build: one spawned stream per sample, so the
            # result is identical for every backend at every worker count.
            from repro.backend.base import seed_to_sequence

            children = seed_to_sequence(rng).spawn(num_samples)
            tasks = [
                (
                    self.edge_weights,
                    [gamma],
                    self.max_k,
                    num_rr_sets,
                    [child],
                    rr_kernel,
                )
                for gamma, child in zip(gammas, children)
            ]
            for chunk in backend.map_chunks(_precompute_sample_chunk, tasks):
                self.samples.extend(chunk)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def coupling_gap(self, gamma: np.ndarray, sample: TopicSample) -> float:
        """Λ(γ, γ_s): upper bound on |σ_γ(S) − σ_{γ_s}(S)| for any S."""
        gamma = check_simplex(gamma, "gamma")
        delta = np.abs(gamma - sample.gamma)
        gap = float(self.graph.num_nodes * (delta * self.topic_mass).sum())
        return min(gap, float(self.graph.num_nodes))

    def nearest(self, gamma: np.ndarray) -> Tuple[TopicSample, float]:
        """The sample closest to γ in L1 distance, with that distance."""
        gamma = check_simplex(gamma, "gamma")
        best: Optional[TopicSample] = None
        best_distance = float("inf")
        for sample in self.samples:
            distance = float(np.abs(gamma - sample.gamma).sum())
            if distance < best_distance:
                best, best_distance = sample, distance
        assert best is not None  # num_samples >= 1 enforced in __init__
        return best, best_distance

    def query(
        self,
        gamma: np.ndarray,
        k: int,
        *,
        best_effort: Optional[BestEffortKeywordIM] = None,
        gap_tolerance: float = 0.2,
    ) -> IMResult:
        """Answer a keyword IM query through the sample index.

        When the nearest sample's L1 distance to γ is within
        ``gap_tolerance``, the cached seeds are returned immediately
        (statistics flag ``answered_from_sample=1``; the rigorous-but-loose
        coupling gap is reported alongside, giving the
        ``±Λ`` spread certificate).  Otherwise the query falls through to
        *best_effort* (required in that case) with the cached seeds as warm
        start — "using the samples to better estimate upper and lower
        bounds for pruning instead of directly answering the query".
        """
        gamma = check_simplex(gamma, "gamma")
        check_positive(k, "k")
        check_in_range(gap_tolerance, 0.0, 2.0, "gap_tolerance")
        if k > self.max_k:
            raise ValidationError(
                f"k={k} exceeds the precomputed max_k={self.max_k}"
            )
        sample, distance = self.nearest(gamma)
        cached_spread = sample.spread(k)
        coupling_gap = self.coupling_gap(gamma, sample)
        if distance <= gap_tolerance:
            return IMResult(
                seeds=sample.seeds(k),
                spread=cached_spread,
                marginal_gains=[],
                evaluations=0,
                statistics={
                    "answered_from_sample": 1.0,
                    "l1_distance": distance,
                    "coupling_gap": coupling_gap,
                    "spread_lower_bound": max(cached_spread - coupling_gap, 0.0),
                    "spread_upper_bound": cached_spread + coupling_gap,
                },
            )
        if best_effort is None:
            raise ValidationError(
                "query gap exceeds tolerance and no best-effort fallback given"
            )
        result = best_effort.query(gamma, k, warm_start=sample.seeds(k))
        result.statistics["answered_from_sample"] = 0.0
        result.statistics["l1_distance"] = distance
        result.statistics["coupling_gap"] = coupling_gap
        return result

"""The OCTOPUS system facade (Figure 2's architecture, end to end).

Wires the topic-aware influence model to the three online services behind a
keyword-based interface:

* :meth:`Octopus.find_influencers` — keyword-based influence maximization
  (§II-C: topic-sample index with best-effort fallback);
* :meth:`Octopus.suggest_keywords` — personalized influential keywords
  (§II-D: influencer index + pruned greedy search);
* :meth:`Octopus.explore_paths` — influential path trees (§II-E: MIA).

Plus the UI plumbing of the demo: keyword parsing, auto-completion tries,
radar-diagram data and system statistics.

This facade is a *pure compute backend*: it always computes.  Serving
concerns — result caching, metrics, validation envelopes, batching — live
one layer up in :class:`repro.service.OctopusService`, which is the front
door every client (CLI, workload engine, examples) should use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.backend.base import ExecutionBackend

import numpy as np

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import (
    LocalGraphBound,
    NeighborhoodBound,
    PrecomputationBound,
)
from repro.core.influencer_index import InfluencerIndex
from repro.core.paths import InfluencePathExplorer, PathTree
from repro.core.query import (
    InfluencerResult,
    KeywordQuery,
    KeywordSuggestionResult,
)
from repro.core.suggestion import KeywordSuggester
from repro.core.topic_samples import TopicSampleIndex
from repro.graph.digraph import SocialGraph
from repro.index.inverted import InvertedIndex
from repro.index.trie import Trie
from repro.topics.edges import TopicEdgeWeights
from repro.topics.model import TopicModel
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.timer import Stopwatch
from repro.utils.validation import ValidationError, check_positive

__all__ = ["OctopusConfig", "Octopus"]


@dataclass
class OctopusConfig:
    """Tuning knobs of the online engine (defaults suit ~10³-node graphs)."""

    bound_estimator: str = "precomputation"
    precomputation_grid: int = 4
    local_radius: int = 2
    oracle: str = "mc"
    oracle_samples: int = 100
    oracle_rr_sets: int = 2000
    use_topic_samples: bool = True
    num_topic_samples: int = 16
    topic_sample_max_k: int = 20
    topic_sample_rr_sets: int = 2000
    gap_tolerance: float = 0.3
    num_sketches: int = 300
    sketch_chunk_size: int = 1_000_000
    suggestion_candidate_limit: int = 30
    consistency_filter: bool = False
    default_k: int = 10
    default_path_threshold: float = 0.01
    cache_capacity: int = 128  # default capacity of the service-layer result cache
    execution_backend: str = "serial"  # serial | threads | processes
    workers: Optional[int] = None  # worker count for pooled backends
    rr_kernel: str = "vectorized"  # vectorized | legacy | native (RR core)
    sketch_expansion: str = "frontier"  # frontier | node (sketch build core)
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.bound_estimator not in ("precomputation", "neighborhood", "local"):
            raise ValidationError(
                "bound_estimator must be 'precomputation', 'neighborhood' or "
                f"'local', got {self.bound_estimator!r}"
            )
        if self.execution_backend not in ("serial", "threads", "processes"):
            raise ValidationError(
                "execution_backend must be 'serial', 'threads' or "
                f"'processes', got {self.execution_backend!r}"
            )
        from repro.propagation.kernels import check_rr_kernel

        check_rr_kernel(self.rr_kernel)
        from repro.core.influencer_index import check_expansion

        check_expansion(self.sketch_expansion)
        if self.workers is not None:
            check_positive(self.workers, "workers")
        for name in (
            "precomputation_grid",
            "local_radius",
            "oracle_samples",
            "oracle_rr_sets",
            "num_topic_samples",
            "topic_sample_max_k",
            "topic_sample_rr_sets",
            "num_sketches",
            "sketch_chunk_size",
            "suggestion_candidate_limit",
            "default_k",
            "cache_capacity",
        ):
            check_positive(getattr(self, name), name)


class Octopus:
    """The online topic-aware influence analysis system."""

    def __init__(
        self,
        graph: SocialGraph,
        topic_model: TopicModel,
        edge_weights: TopicEdgeWeights,
        user_keywords: Dict[int, List[int]],
        *,
        topic_names: Optional[Sequence[str]] = None,
        config: Optional[OctopusConfig] = None,
    ) -> None:
        if edge_weights.graph is not graph:
            raise ValidationError("edge_weights were built for a different graph")
        if edge_weights.num_topics != topic_model.num_topics:
            raise ValidationError(
                f"edge_weights has {edge_weights.num_topics} topics but the "
                f"topic model has {topic_model.num_topics}"
            )
        self.graph = graph
        self.topic_model = topic_model
        self.edge_weights = edge_weights
        self.user_keywords = user_keywords
        self.config = config or OctopusConfig()
        self.topic_names = (
            list(topic_names)
            if topic_names is not None
            else [f"topic-{z}" for z in range(topic_model.num_topics)]
        )
        if len(self.topic_names) != topic_model.num_topics:
            raise ValidationError(
                f"{len(self.topic_names)} topic names for "
                f"{topic_model.num_topics} topics"
            )
        self._stopwatch = Stopwatch()
        self._build_indexes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dataset(
        cls,
        dataset,
        *,
        config: Optional[OctopusConfig] = None,
        learn_model: bool = False,
        em_config=None,
    ) -> "Octopus":
        """Build a system from a :class:`~repro.datasets.SocialDataset`.

        With ``learn_model=True`` the topic model and edge probabilities are
        fitted from the dataset's action logs via EM (the full §II-B
        pipeline); otherwise the dataset's ground truth is used directly.
        """
        if learn_model:
            from repro.topics.em import EMConfig, TICLearner

            em_config = em_config or EMConfig(
                num_topics=dataset.num_topics, seed=0
            )
            learner = TICLearner(dataset.graph, dataset.vocabulary, em_config)
            fitted = learner.fit(dataset.items)
            topic_model = fitted.topic_model
            edge_weights = fitted.edge_weights
        else:
            if dataset.true_topic_model is None or dataset.true_edge_weights is None:
                raise ValidationError(
                    "dataset has no ground-truth model; pass learn_model=True"
                )
            topic_model = dataset.true_topic_model
            edge_weights = dataset.true_edge_weights
        return cls(
            dataset.graph,
            topic_model,
            edge_weights,
            dataset.user_keywords,
            topic_names=dataset.topic_names,
            config=config,
        )

    def _build_indexes(self) -> None:
        config = self.config
        # ``serial`` means "no backend object at all": index builds take the
        # historical sequential code paths, so seed behaviour stays
        # bit-identical to releases that predate the backend layer.
        self.execution: Optional["ExecutionBackend"] = None
        if config.execution_backend != "serial":
            from repro.backend import resolve_backend

            self.execution = resolve_backend(
                config.execution_backend, config.workers
            )
        rngs = spawn_generators(config.seed, 4)
        with self._stopwatch.phase("build.bounds"):
            if config.bound_estimator == "precomputation":
                self.bound_estimator = PrecomputationBound(
                    self.edge_weights, grid=config.precomputation_grid
                )
            elif config.bound_estimator == "neighborhood":
                self.bound_estimator = NeighborhoodBound(self.edge_weights)
            else:
                self.bound_estimator = LocalGraphBound(
                    self.edge_weights, radius=config.local_radius
                )
        with self._stopwatch.phase("build.best_effort"):
            self.best_effort = BestEffortKeywordIM(
                self.edge_weights,
                self.bound_estimator,
                oracle=config.oracle,
                num_samples=config.oracle_samples,
                num_sets=config.oracle_rr_sets,
                seed=rngs[0],
                backend=self.execution,
                rr_kernel=config.rr_kernel,
            )
        self.topic_sample_index: Optional[TopicSampleIndex] = None
        if config.use_topic_samples:
            with self._stopwatch.phase("build.topic_samples"):
                self.topic_sample_index = TopicSampleIndex(
                    self.edge_weights,
                    num_samples=config.num_topic_samples,
                    max_k=config.topic_sample_max_k,
                    num_rr_sets=config.topic_sample_rr_sets,
                    seed=rngs[1],
                    backend=self.execution,
                    rr_kernel=config.rr_kernel,
                )
        with self._stopwatch.phase("build.influencer_index"):
            self.influencer_index = InfluencerIndex(
                self.edge_weights,
                num_sketches=config.num_sketches,
                chunk_size=config.sketch_chunk_size,
                seed=rngs[2],
                backend=self.execution,
                expansion=config.sketch_expansion,
            )
        with self._stopwatch.phase("build.suggester"):
            self.suggester = KeywordSuggester(
                self.topic_model,
                self.influencer_index,
                self.user_keywords,
                candidate_limit=config.suggestion_candidate_limit,
                consistency_filter=config.consistency_filter,
            )
        self.path_explorer = InfluencePathExplorer(self.edge_weights)
        with self._stopwatch.phase("build.tries"):
            self.user_trie = Trie()
            if self.graph.labels is not None:
                for node, label in enumerate(self.graph.labels):
                    self.user_trie.insert(
                        label, node, weight=float(self.graph.out_degree(node))
                    )
            self.keyword_trie = Trie()
            counts = self.topic_model.vocabulary.counts()
            for word_id, word in enumerate(self.topic_model.vocabulary.words()):
                self.keyword_trie.insert(word, word_id, weight=float(counts[word_id]))
            self.inverted_index = InvertedIndex()
            for user, words in self.user_keywords.items():
                self.inverted_index.add_document(user, words)

    # ------------------------------------------------------------------
    # Keyword / user resolution
    # ------------------------------------------------------------------

    def parse_keywords(self, keywords: Union[str, Sequence[str]]) -> Tuple[str, ...]:
        """Normalise user input into known vocabulary keywords.

        Accepts a sequence of keywords or a comma-separated string; each
        entry must exist in the vocabulary (multi-word keywords such as
        ``"data mining"`` are single entries).  Unknown keywords raise a
        :class:`ValidationError` carrying auto-completion suggestions.
        """
        if isinstance(keywords, str):
            parts = [part for part in keywords.split(",") if part.strip()]
        else:
            parts = [str(part) for part in keywords]
        if not parts:
            raise ValidationError("no keywords given")
        vocabulary = self.topic_model.vocabulary
        resolved = []
        for part in parts:
            normalized = vocabulary.normalize(part)
            if normalized in vocabulary:
                resolved.append(normalized)
                continue
            suggestions = [key for key, _p in self.keyword_trie.complete(normalized, 3)]
            hint = f"; did you mean {suggestions}?" if suggestions else ""
            raise ValidationError(f"unknown keyword {normalized!r}{hint}")
        return tuple(resolved)

    def resolve_user(self, user: Union[int, str]) -> int:
        """Resolve a user id or (exact) user name to a node id."""
        if isinstance(user, (int, np.integer)) and not isinstance(user, bool):
            node = int(user)
            if not 0 <= node < self.graph.num_nodes:
                raise ValidationError(
                    f"user id must be in [0, {self.graph.num_nodes}), got {node}"
                )
            return node
        if isinstance(user, str):
            try:
                return self.graph.node_by_label(user.strip())
            except ValidationError:
                completions = self.autocomplete_users(user, limit=3)
                hint = (
                    f"; did you mean {[name for name, _n in completions]}?"
                    if completions
                    else ""
                )
                raise ValidationError(f"unknown user {user!r}{hint}") from None
        raise ValidationError(f"user must be an id or a name, got {user!r}")

    def derive_gamma(self, keywords: Union[str, Sequence[str]]) -> np.ndarray:
        """Topic distribution γ captured by the given keywords (§II-B)."""
        resolved = self.parse_keywords(keywords)
        return self.topic_model.keyword_topic_posterior(list(resolved))

    # ------------------------------------------------------------------
    # Service 1: keyword-based influential user discovery
    # ------------------------------------------------------------------

    def find_influencers(
        self,
        keywords: Union[str, Sequence[str]],
        k: Optional[int] = None,
    ) -> InfluencerResult:
        """Seed users with maximum influence spread on the keywords' topic."""
        k = k if k is not None else self.config.default_k
        check_positive(k, "k")
        resolved = self.parse_keywords(keywords)
        started = time.perf_counter()
        gamma = self.topic_model.keyword_topic_posterior(list(resolved))
        query = KeywordQuery(keywords=resolved, gamma=gamma, k=k)
        with self._stopwatch.phase("query.influencers"):
            if (
                self.topic_sample_index is not None
                and k <= self.topic_sample_index.max_k
            ):
                im_result = self.topic_sample_index.query(
                    gamma,
                    k,
                    best_effort=self.best_effort,
                    gap_tolerance=self.config.gap_tolerance,
                )
            else:
                im_result = self.best_effort.query(gamma, k)
        labels = [self.graph.label_of(node) for node in im_result.seeds]
        result = InfluencerResult(
            query=query,
            seeds=im_result.seeds,
            spread=im_result.spread,
            labels=labels,
            marginal_gains=im_result.marginal_gains,
            elapsed_seconds=time.perf_counter() - started,
            statistics=dict(im_result.statistics),
        )
        return result

    def find_targeted_influencers(
        self,
        keywords: Union[str, Sequence[str]],
        k: Optional[int] = None,
        *,
        audience_keywords: Optional[Union[str, Sequence[str]]] = None,
        num_sets: int = 2000,
    ) -> InfluencerResult:
        """Targeted variant: only the relevant audience counts (ref. [7]).

        The audience defaults to the users who used the query keywords in
        their actions (from the inverted index); *audience_keywords* can
        target a different population than the propagated topic (e.g.
        propagate on "game", count only "console" users).
        """
        k = k if k is not None else self.config.default_k
        check_positive(k, "k")
        resolved = self.parse_keywords(keywords)
        audience_resolved = (
            self.parse_keywords(audience_keywords)
            if audience_keywords is not None
            else resolved
        )
        from repro.core.targeted import TargetedKeywordIM

        started = time.perf_counter()
        gamma = self.topic_model.keyword_topic_posterior(list(resolved))
        query = KeywordQuery(keywords=resolved, gamma=gamma, k=k)
        engine = TargetedKeywordIM(
            self.edge_weights,
            self.inverted_index,
            num_sets=num_sets,
            seed=self.config.seed,
            backend=self.execution,
            rr_kernel=self.config.rr_kernel,
        )
        word_ids = self.topic_model.vocabulary.ids_of(list(audience_resolved))
        audience = engine.audience_for_keywords(word_ids)
        with self._stopwatch.phase("query.targeted"):
            im_result = engine.query(gamma, k, audience)
        result = InfluencerResult(
            query=query,
            seeds=im_result.seeds,
            spread=im_result.spread,
            labels=[self.graph.label_of(node) for node in im_result.seeds],
            marginal_gains=im_result.marginal_gains,
            elapsed_seconds=time.perf_counter() - started,
            statistics=dict(im_result.statistics),
        )
        return result

    # ------------------------------------------------------------------
    # Service 2: personalized influential keywords suggestion
    # ------------------------------------------------------------------

    def suggest_keywords(
        self,
        user: Union[int, str],
        k: int = 3,
        *,
        method: str = "greedy",
    ) -> KeywordSuggestionResult:
        """The user's most influential k-sized keyword set (§II-D)."""
        node = self.resolve_user(user)
        with self._stopwatch.phase("query.suggestion"):
            return self.suggester.suggest(node, k, method=method)

    # ------------------------------------------------------------------
    # Service 3: influential path exploration
    # ------------------------------------------------------------------

    def explore_paths(
        self,
        user: Union[int, str],
        *,
        keywords: Optional[Union[str, Sequence[str]]] = None,
        threshold: Optional[float] = None,
        direction: str = "influences",
        max_nodes: Optional[int] = None,
    ) -> PathTree:
        """Influential path tree of *user* (§II-E).

        With *keywords* the tree is topic-specific; otherwise it shows
        overall influence (uniform γ).
        """
        node = self.resolve_user(user)
        gamma = self.derive_gamma(keywords) if keywords is not None else None
        threshold = (
            threshold if threshold is not None else self.config.default_path_threshold
        )
        with self._stopwatch.phase("query.paths"):
            return self.path_explorer.explore(
                node,
                gamma=gamma,
                threshold=threshold,
                direction=direction,
                max_nodes=max_nodes,
            )

    # ------------------------------------------------------------------
    # UI plumbing
    # ------------------------------------------------------------------

    def autocomplete_users(self, prefix: str, limit: int = 10) -> List[Tuple[str, int]]:
        """User-name completions as (name, node id)."""
        return self.user_trie.complete(prefix, limit)

    def autocomplete_keywords(
        self, prefix: str, limit: int = 10
    ) -> List[Tuple[str, int]]:
        """Keyword completions as (keyword, word id)."""
        return self.keyword_trie.complete(prefix, limit)

    def radar(self, keywords: Union[str, Sequence[str]]) -> Dict[str, object]:
        """Radar-diagram payload interpreting the keywords over topics."""
        from repro.viz.radar import radar_chart_data

        resolved = self.parse_keywords(keywords)
        return radar_chart_data(self.topic_model, list(resolved), self.topic_names)

    def statistics(self) -> Dict[str, object]:
        """Build/query timings and index sizes (cache stats live in the
        service layer, where the cache now lives).  Values are floats
        except the ``execution.*`` identity keys (backend name, configured
        RR kernel, and native-kernel provenance), which are strings so
        snapshots are self-describing."""
        stats: Dict[str, object] = {}
        for name, total in self._stopwatch.totals().items():
            stats[f"seconds.{name}"] = total
        for key, value in self.influencer_index.statistics().items():
            stats[f"influencer_index.{key}"] = value
        if self.topic_sample_index is not None:
            stats["topic_samples.count"] = float(len(self.topic_sample_index))
        if hasattr(self.bound_estimator, "index_size"):
            stats["bounds.index_size"] = float(self.bound_estimator.index_size)
        stats["execution.backend"] = (
            self.execution.name if self.execution is not None else "serial"
        )
        stats["execution.workers"] = float(
            self.execution.workers if self.execution is not None else 1
        )
        stats["execution.rr_kernel"] = self.config.rr_kernel
        # Which implementation the "native" kernel would run on (and the
        # cover-update inner loop does run on): the compiled extension or
        # its pure-Python twin.  Pure observability — never an answer
        # change — but essential for reading benchmark numbers.
        from repro.propagation.native import kernel_provenance

        stats["execution.native_kernel"] = kernel_provenance()
        # How chunk payloads reach the parent: "inline" (same address
        # space — serial/threads), "shm" (zero-copy arena descriptors) or
        # "pickle" (the REPRO_SHM=0 twin / non-fork fallback).
        stats["execution.payload_transport"] = (
            getattr(self.execution, "payload_transport", "inline")
            if self.execution is not None
            else "inline"
        )
        stats["graph.num_nodes"] = float(self.graph.num_nodes)
        stats["graph.num_edges"] = float(self.graph.num_edges)
        return stats

    def close(self) -> None:
        """Release the execution backend's worker pool, if any."""
        if self.execution is not None:
            self.execution.close()

    def __enter__(self) -> "Octopus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Influential-path visualisation and exploration (§II-E).

Restricts a user's influence to the maximum influence arborescence (MIA,
[4]): the tree of highest-activation-probability paths out of (MIOA) or into
(MIIA) the user, pruned below a probability threshold θ.  The resulting
:class:`PathTree` supports the demo's interactions: node sizes ("the size of
each node represents the effect of the user on influence"), clusters (the
root's subtrees — "the influenced users roughly form some clusters"), and
click-highlighting of all paths through a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.traversal import max_probability_paths
from repro.topics.edges import TopicEdgeWeights
from repro.topics.priors import uniform_distribution
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_node_id,
    check_simplex,
)

__all__ = ["PathTree", "InfluencePathExplorer"]


@dataclass
class PathTree:
    """An influence arborescence rooted at a queried user.

    ``parents[v]`` is the previous hop on the best path between ``root`` and
    ``v`` (``root`` maps to itself); ``probabilities[v]`` is that path's
    activation probability — the node's *effect* in the visualisation.
    ``direction`` is ``"influences"`` (MIOA: who the root influences) or
    ``"influenced_by"`` (MIIA: who influences the root).
    """

    root: int
    direction: str
    threshold: float
    gamma: np.ndarray
    parents: Dict[int, int]
    probabilities: Dict[int, float]
    labels: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.direction not in ("influences", "influenced_by"):
            raise ValidationError(
                f"direction must be 'influences' or 'influenced_by', "
                f"got {self.direction!r}"
            )
        self._children: Optional[Dict[int, List[int]]] = None
        self._subtree_sizes: Optional[Dict[int, int]] = None

    # -- structure ------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes in the tree (root included)."""
        return len(self.parents)

    def children(self) -> Dict[int, List[int]]:
        """Child lists (nodes one hop further from the root), cached."""
        if self._children is None:
            children: Dict[int, List[int]] = {node: [] for node in self.parents}
            for node, parent in self.parents.items():
                if node != self.root:
                    children[parent].append(node)
            for child_list in children.values():
                child_list.sort(key=lambda n: -self.probabilities[n])
            self._children = children
        return self._children

    def subtree_size(self, node: int) -> int:
        """Number of nodes in *node*'s subtree (itself included)."""
        if self._subtree_sizes is None:
            sizes: Dict[int, int] = {}
            children = self.children()
            order: List[int] = []
            stack = [self.root]
            while stack:
                current = stack.pop()
                order.append(current)
                stack.extend(children[current])
            for current in reversed(order):
                sizes[current] = 1 + sum(sizes[child] for child in children[current])
            self._subtree_sizes = sizes
        if node not in self.parents:
            raise ValidationError(f"node {node} is not in the path tree")
        return self._subtree_sizes[node]

    def depth_of(self, node: int) -> int:
        """Hop distance between *node* and the root."""
        return len(self.path_to(node)) - 1

    # -- demo interactions ----------------------------------------------

    def path_to(self, node: int) -> List[int]:
        """The best influence path between the root and *node*.

        Returned root-first regardless of direction.
        """
        if node not in self.parents:
            raise ValidationError(f"node {node} is not in the path tree")
        path = [node]
        while path[-1] != self.root:
            path.append(self.parents[path[-1]])
        path.reverse()
        return path

    def paths_through(self, node: int) -> List[List[int]]:
        """All root-to-leaf-ish paths passing through *node*.

        The demo's click interaction: the root→node prefix joined with every
        maximal continuation below *node*.
        """
        prefix = self.path_to(node)
        children = self.children()
        if not children[node]:
            return [prefix]
        paths: List[List[int]] = []
        stack: List[List[int]] = [[node]]
        while stack:
            partial = stack.pop()
            tail = partial[-1]
            if not children[tail]:
                paths.append(prefix[:-1] + partial)
                continue
            for child in children[tail]:
                stack.append(partial + [child])
        return paths

    def clusters(self, min_size: int = 1) -> List[List[int]]:
        """The root's subtrees, largest first — the Scenario-3 "clusters"."""
        children = self.children()
        result: List[List[int]] = []
        for child in children[self.root]:
            members: List[int] = []
            stack = [child]
            while stack:
                current = stack.pop()
                members.append(current)
                stack.extend(children[current])
            if len(members) >= min_size:
                result.append(sorted(members))
        result.sort(key=len, reverse=True)
        return result

    def label_of(self, node: int) -> str:
        """Display label of *node*."""
        return self.labels.get(node, f"node-{node}")

    def to_dict(self) -> Dict:
        """JSON-serialisable summary (the d3 exporter consumes this)."""
        return {
            "root": self.root,
            "direction": self.direction,
            "threshold": self.threshold,
            "gamma": [float(x) for x in self.gamma],
            "nodes": [
                {
                    "id": node,
                    "label": self.label_of(node),
                    "probability": self.probabilities[node],
                    "parent": self.parents[node] if node != self.root else None,
                }
                for node in sorted(self.parents)
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PathTree":
        """Rebuild a tree from its :meth:`to_dict` form (service payloads).

        ``to_dict(from_dict(d)) == d`` for any payload produced by
        :meth:`to_dict` — this is what lets path trees travel as JSON
        through the service layer and come back renderable.
        """
        root = int(payload["root"])
        parents: Dict[int, int] = {}
        probabilities: Dict[int, float] = {}
        labels: Dict[int, str] = {}
        for entry in payload["nodes"]:
            node = int(entry["id"])
            parent = entry.get("parent")
            parents[node] = root if parent is None else int(parent)
            probabilities[node] = float(entry["probability"])
            label = entry.get("label")
            if label is not None and label != f"node-{node}":
                labels[node] = label
        return cls(
            root=root,
            direction=payload["direction"],
            threshold=float(payload["threshold"]),
            gamma=np.asarray(payload["gamma"], dtype=np.float64),
            parents=parents,
            probabilities=probabilities,
            labels=labels,
        )


class InfluencePathExplorer:
    """Builds :class:`PathTree` views over the topic-aware graph."""

    def __init__(self, edge_weights: TopicEdgeWeights) -> None:
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph

    def explore(
        self,
        user: int,
        *,
        gamma: Optional[np.ndarray] = None,
        threshold: float = 0.01,
        direction: str = "influences",
        max_nodes: Optional[int] = None,
    ) -> PathTree:
        """Build the influence arborescence of *user*.

        Parameters
        ----------
        gamma:
            Topic distribution of interest (defaults to uniform — overall
            influence).
        threshold:
            MIA pruning parameter θ: paths with activation probability below
            it are ignored.
        direction:
            ``"influences"`` explores whom the user influences (MIOA);
            ``"influenced_by"`` explores the user's influencers (MIIA).
        max_nodes:
            Optional cap on tree size for interactive latency.
        """
        check_node_id(user, self.graph.num_nodes, "user")
        check_in_range(threshold, 0.0, 1.0, "threshold")
        if direction not in ("influences", "influenced_by"):
            raise ValidationError(
                f"direction must be 'influences' or 'influenced_by', "
                f"got {direction!r}"
            )
        if gamma is None:
            gamma = uniform_distribution(self.edge_weights.num_topics)
        gamma = check_simplex(gamma, "gamma")
        probabilities = self.edge_weights.edge_probabilities(gamma)
        path_probs, parents = max_probability_paths(
            self.graph,
            user,
            probabilities,
            threshold=threshold,
            reverse=(direction == "influenced_by"),
            max_nodes=max_nodes,
        )
        labels = {}
        if self.graph.labels is not None:
            labels = {node: self.graph.label_of(node) for node in parents}
        return PathTree(
            root=user,
            direction=direction,
            threshold=threshold,
            gamma=gamma,
            parents=parents,
            probabilities=path_probs,
            labels=labels,
        )

"""Online model refresh: influence analysis under evolving edge weights.

OCTOPUS's deployment story (and its reference [9], real-time IM on dynamic
social streams) requires the model to track the network: action logs keep
arriving, the EM fit is re-run (or incrementally updated), and the
per-edge topic probabilities ``pp^z`` drift.  Naively, every index must be
rebuilt.

The key structural fact this module exploits: the influencer index's
sketches separate *randomness* (per-edge uniform thresholds θ, drawn at
build time) from *model* (the weight rows consulted at query time).  A
threshold is a coupling device — ``P(θ_e ≤ p) = p`` for any ``p`` — so
sketches built once remain **exactly valid** under any weight refresh; only
the per-sketch weight-row cache must be dropped.  The same separation holds
for nothing else: bound tables and topic-sample seed caches genuinely
depend on the weights and are rebuilt (tracked as the refresh cost
benchmark E12 measures).

One caveat, handled explicitly: sketch construction *prunes* edges whose
threshold exceeds the build-time envelope ``max_z pp^z_e``.  A refresh that
*raises* an edge's probability above the old envelope would make pruning
unsound, so :class:`DynamicInfluenceEngine` verifies the new weights stay
under the envelope actually used for pruning and otherwise triggers a
sketch rebuild for correctness.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.influencer_index import InfluencerIndex
from repro.topics.edges import TopicEdgeWeights
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike
from repro.utils.validation import ValidationError

__all__ = ["DynamicInfluenceEngine"]

_LOGGER = get_logger("core.dynamic")


class DynamicInfluenceEngine:
    """Influencer-index lifecycle under streaming weight refreshes.

    Wraps an :class:`InfluencerIndex` and swaps in refreshed
    :class:`TopicEdgeWeights` (e.g. from periodic EM re-fits) without
    re-sampling sketches whenever that is provably sound.

    Statistics track how many refreshes were absorbed in-place vs forced a
    rebuild.
    """

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        *,
        num_sketches: int = 300,
        seed: SeedLike = None,
    ) -> None:
        self.graph = edge_weights.graph
        self._seed = seed
        self._num_sketches = num_sketches
        self.edge_weights = edge_weights
        # The envelope the sketches' pruning decisions were taken against.
        self._pruning_envelope = edge_weights.max_over_topics().copy()
        self.index = InfluencerIndex(
            edge_weights, num_sketches=num_sketches, seed=seed
        )
        self.refreshes_absorbed = 0
        self.refreshes_rebuilt = 0
        self.version = 0

    # ------------------------------------------------------------------

    def refresh(self, new_weights: TopicEdgeWeights) -> bool:
        """Swap in *new_weights*; returns ``True`` if absorbed in place.

        In-place absorption requires (a) the same graph object (edge ids
        must align) and (b) every new per-edge probability to stay within
        the envelope the sketches pruned against.  Otherwise the sketches
        are re-sampled from the engine's seed (still deterministic).
        """
        if new_weights.graph is not self.graph:
            raise ValidationError(
                "refresh requires weights on the same graph instance"
            )
        if new_weights.num_topics != self.edge_weights.num_topics:
            raise ValidationError(
                f"topic count changed ({self.edge_weights.num_topics} → "
                f"{new_weights.num_topics}); rebuild the engine instead"
            )
        self.version += 1
        new_envelope = new_weights.max_over_topics()
        if np.all(new_envelope <= self._pruning_envelope + 1e-12):
            # Sound: every pruned edge stays impossible, every kept
            # threshold remains a valid coupling draw.
            self.edge_weights = new_weights
            self.index.edge_weights = new_weights
            self.index._weight_cache.clear()
            self.refreshes_absorbed += 1
            _LOGGER.debug("refresh %d absorbed in place", self.version)
            return True
        raised = int(np.sum(new_envelope > self._pruning_envelope + 1e-12))
        _LOGGER.debug(
            "refresh %d rebuilds sketches (%d edges exceeded the pruning "
            "envelope)",
            self.version,
            raised,
        )
        self.edge_weights = new_weights
        self._pruning_envelope = new_envelope.copy()
        self.index = InfluencerIndex(
            new_weights, num_sketches=self._num_sketches, seed=self._seed
        )
        self.refreshes_rebuilt += 1
        return False

    # ------------------------------------------------------------------

    def estimate_user_spread(self, user: int, gamma: np.ndarray) -> float:
        """Current-model spread estimate (delegates to the live index)."""
        return self.index.estimate_user_spread(user, gamma)

    def statistics(self) -> Dict[str, float]:
        """Refresh bookkeeping plus the live index's statistics."""
        stats = {
            "version": float(self.version),
            "refreshes_absorbed": float(self.refreshes_absorbed),
            "refreshes_rebuilt": float(self.refreshes_rebuilt),
        }
        for key, value in self.index.statistics().items():
            stats[f"index.{key}"] = value
        return stats

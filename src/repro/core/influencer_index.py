"""The influencer index behind personalized keyword suggestion (§II-D).

"To achieve real-time influence spread computation, we introduce a novel
index structure that maintains 'influencers' of uniformly sampled users to
avoid online sampling from scratch.  We also devise effective pruning and
delay materialization techniques for fast influence computation."

Structure.  The index samples *poll roots* uniformly and builds, per root, a
**sketch**: the reverse-reachable subgraph over *potentially live* edges.
Each examined edge draws a fixed uniform threshold ``θ_e``; under a query
topic distribution γ the edge is live iff ``θ_e ≤ pp_e(γ)``, so reachability
in a sketch distributes exactly like an IC reverse-reachable set while the
shared thresholds couple all queries (the lazy-propagation sampling of [6]).

* **Lazy propagation / permanent pruning** — an edge whose threshold exceeds
  the topic envelope ``max_z pp^z_e`` can never be live for any γ and is
  dropped at build time; only query-dependent edges are materialised.
* **Delayed materialization** — sketches grow up to ``chunk_size`` nodes at
  build time and keep their unexplored frontier plus a private RNG stream;
  a query that needs to know whether a node belongs to a sketch expands it
  on demand, deterministically.
* **Membership pruning** — a node→sketches inverted map lets a target-user
  query touch only the sketches that (currently) contain the user.

Estimator.  ``σ̂_γ(S) = (n / R) · #{sketches whose root is reached from S
via live edges}`` — the standard unbiased RIS estimator, here evaluated by a
vectorised liveness test (one mat-vec per sketch) plus a reverse BFS.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.validation import (
    ValidationError,
    check_node_id,
    check_positive,
    check_simplex,
)

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.backend.base import ExecutionBackend

__all__ = ["Sketch", "InfluencerIndex"]


@dataclass
class Sketch:
    """Reverse potential-world sketch rooted at ``root``.

    ``edge_sources``/``edge_targets``/``edge_thresholds`` describe the
    materialised potentially-live edges (each target is already in the
    sketch); ``frontier`` holds nodes whose in-edges have not been examined
    yet (delayed materialization).
    """

    root: int
    nodes: Set[int]
    edge_sources: List[int] = field(default_factory=list)
    edge_targets: List[int] = field(default_factory=list)
    edge_ids: List[int] = field(default_factory=list)
    edge_thresholds: List[float] = field(default_factory=list)
    frontier: List[int] = field(default_factory=list)
    edges_pruned: int = 0

    @property
    def complete(self) -> bool:
        """Whether every reachable in-edge has been examined."""
        return not self.frontier

    @property
    def num_edges(self) -> int:
        """Materialised (potentially live) edge count."""
        return len(self.edge_sources)


def _expand_sketch(
    graph: SocialGraph,
    envelope: np.ndarray,
    sketch: Sketch,
    rng: np.random.Generator,
    budget: int,
) -> None:
    """Examine in-edges of up to *budget* frontier nodes of *sketch*.

    The sketch-construction core, free of index state: each sketch is a
    pure function of ``(graph, envelope, root, rng stream)``, which is what
    lets builds be partitioned across workers without changing the result.
    """
    processed = 0
    while sketch.frontier and processed < budget:
        node = sketch.frontier.pop()
        processed += 1
        start, stop = graph.in_offsets[node], graph.in_offsets[node + 1]
        degree = int(stop - start)
        if degree == 0:
            continue
        thresholds = rng.random(degree)
        edge_ids = graph.in_edge_ids[start:stop]
        # Vectorized permanent pruning: an edge whose threshold exceeds the
        # topic envelope can never be live for any γ.  The mask preserves
        # edge order and the single rng.random(degree) block above keeps
        # results bit-identical to the historical per-edge loop.
        live = thresholds <= envelope[edge_ids]
        live_count = int(np.count_nonzero(live))
        sketch.edges_pruned += degree - live_count
        if live_count == 0:
            continue
        live_sources = graph.in_sources[start:stop][live].tolist()
        sketch.edge_sources.extend(live_sources)
        sketch.edge_targets.extend([node] * live_count)
        sketch.edge_ids.extend(edge_ids[live].tolist())
        sketch.edge_thresholds.extend(thresholds[live].tolist())
        for source in live_sources:
            if source not in sketch.nodes:
                sketch.nodes.add(source)
                sketch.frontier.append(source)


def _expand_sketch_frontier(
    graph: SocialGraph,
    envelope: np.ndarray,
    sketch: Sketch,
    rng: np.random.Generator,
    budget: int,
) -> None:
    """Frontier-batched expansion: whole pending batches per iteration.

    The frontier is consumed as a FIFO queue; each iteration takes the
    longest budget-permitted prefix, gathers every taken node's in-CSR
    slice with one fancy-indexing pass and draws **one** threshold array
    for the whole batch instead of one ``rng.random`` call per node.

    Determinism: the queue order is a pure function of the sketch state, a
    batch's thresholds are assigned in (queue order × CSR edge order), and
    ``Generator.random`` concatenates — ``random(a)`` then ``random(b)``
    equals ``random(a + b)`` split — so results are independent of where
    budget boundaries fall (chunked builds and delayed materialization
    replay the eager build exactly; the seed-stability suite proves it).
    The draw order differs from the node-at-a-time discipline, so the two
    expansion modes are each self-deterministic but not inter-compatible —
    the same contract the RR sampling kernels follow.
    """
    from repro.propagation.kernels import gather_csr_slices

    processed = 0
    while sketch.frontier and processed < budget:
        take = min(budget - processed, len(sketch.frontier))
        batch = sketch.frontier[:take]
        del sketch.frontier[:take]
        processed += take
        batch_array = np.asarray(batch, dtype=np.int64)
        starts = graph.in_offsets[batch_array]
        stops = graph.in_offsets[batch_array + 1]
        degrees = stops - starts
        total = int(degrees.sum())
        if total == 0:
            continue
        thresholds = rng.random(total)
        positions = gather_csr_slices(starts, stops)
        edge_ids = graph.in_edge_ids[positions]
        live = thresholds <= envelope[edge_ids]
        live_count = int(np.count_nonzero(live))
        sketch.edges_pruned += total - live_count
        if live_count == 0:
            continue
        live_sources = graph.in_sources[positions][live].tolist()
        sketch.edge_sources.extend(live_sources)
        sketch.edge_targets.extend(
            np.repeat(batch_array, degrees)[live].tolist()
        )
        sketch.edge_ids.extend(edge_ids[live].tolist())
        sketch.edge_thresholds.extend(thresholds[live].tolist())
        for source in live_sources:
            if source not in sketch.nodes:
                sketch.nodes.add(source)
                sketch.frontier.append(source)


#: Expansion disciplines: ``frontier`` is the batched kernel (the
#: default), ``node`` the historical node-at-a-time loop kept as the
#: bit-compatible reference for earlier releases' seeds.
_EXPANSION_FUNCTIONS = {
    "node": _expand_sketch,
    "frontier": _expand_sketch_frontier,
}


def check_expansion(expansion: str) -> str:
    """Validate an expansion-mode name."""
    if expansion not in _EXPANSION_FUNCTIONS:
        raise ValidationError(
            f"expansion must be one of {sorted(_EXPANSION_FUNCTIONS)}, "
            f"got {expansion!r}"
        )
    return expansion


def _build_sketch_chunk(task) -> Tuple[List[Sketch], List[np.random.Generator]]:
    """Backend chunk worker: build a slice of sketches from their streams.

    Returns the sketches *and* the advanced generators — across a process
    boundary the parent must adopt the returned RNG state so later delayed
    materialization continues each stream exactly where the build left it.
    """
    graph, envelope, roots, rngs, budget, expansion = task
    expand = _EXPANSION_FUNCTIONS[expansion]
    sketches: List[Sketch] = []
    for root, rng in zip(roots, rngs):
        sketch = Sketch(root=int(root), nodes={int(root)}, frontier=[int(root)])
        expand(graph, envelope, sketch, rng, budget)
        sketches.append(sketch)
    return sketches, list(rngs)


class InfluencerIndex:
    """Sampled reverse sketches supporting real-time spread estimation."""

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        num_sketches: int = 500,
        *,
        chunk_size: int = 100_000,
        seed: SeedLike = None,
        backend: Optional["ExecutionBackend"] = None,
        expansion: str = "frontier",
    ) -> None:
        check_positive(num_sketches, "num_sketches")
        check_positive(chunk_size, "chunk_size")
        self.expansion = check_expansion(expansion)
        self._expand_function = _EXPANSION_FUNCTIONS[self.expansion]
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        if self.graph.num_nodes == 0:
            raise ValidationError("cannot index an empty graph")
        self.num_sketches = num_sketches
        self.chunk_size = chunk_size
        self._envelope = edge_weights.max_over_topics()
        # Queries mutate the index (delayed materialization, per-sketch
        # weight cache); the lock makes concurrent query threads safe.
        self._lock = threading.RLock()
        generators = spawn_generators(seed, num_sketches + 1)
        root_rng, self._sketch_rngs = generators[0], generators[1:]
        roots = root_rng.integers(0, self.graph.num_nodes, size=num_sketches)
        self.sketches: List[Sketch] = []
        self._membership: Dict[int, List[int]] = {}
        self._weight_cache: Dict[int, np.ndarray] = {}
        if backend is None:
            for index, root in enumerate(roots):
                sketch = Sketch(
                    root=int(root), nodes={int(root)}, frontier=[int(root)]
                )
                self._expand_function(
                    self.graph, self._envelope, sketch, self._sketch_rngs[index],
                    budget=chunk_size,
                )
                self.sketches.append(sketch)
        else:
            # Each sketch owns a pre-spawned stream, so partitioning the
            # build changes nothing: any backend, any worker count, any
            # chunking produces the sketches the serial loop produces.
            span = max(1, -(-num_sketches // (backend.workers * 4)))
            tasks = [
                (
                    self.graph,
                    self._envelope,
                    [int(root) for root in roots[start : start + span]],
                    self._sketch_rngs[start : start + span],
                    chunk_size,
                    self.expansion,
                )
                for start in range(0, num_sketches, span)
            ]
            position = 0
            for sketches, rngs in backend.map_chunks(_build_sketch_chunk, tasks):
                self.sketches.extend(sketches)
                # Adopt the advanced RNG state (identity for in-memory
                # backends, a pickled round-trip for process pools).
                for rng in rngs:
                    self._sketch_rngs[position] = rng
                    position += 1
        for index, sketch in enumerate(self.sketches):
            for node in sketch.nodes:
                self._membership.setdefault(node, []).append(index)

    # ------------------------------------------------------------------
    # Construction / delayed materialization
    # ------------------------------------------------------------------

    def _expand(self, sketch_index: int, sketch: Sketch, budget: int) -> None:
        """Examine in-edges of up to *budget* frontier nodes."""
        self._expand_function(
            self.graph,
            self._envelope,
            sketch,
            self._sketch_rngs[sketch_index],
            budget,
        )
        # Materialised arrays changed; invalidate the per-sketch cache.
        self._weight_cache.pop(sketch_index, None)

    def _materialize(self, sketch_index: int) -> Sketch:
        """Fully expand a sketch on demand (delayed materialization).

        A query evaluated on a truncated sketch would be biased: unexamined
        in-edges of frontier nodes can carry live paths, and a node's
        absence is only proven once the frontier is exhausted.  Expansion
        is deterministic (per-sketch RNG stream), happens at most once per
        sketch, and updates the membership map.  Serialized under the index
        lock so concurrent query threads see consistent sketches.
        """
        sketch = self.sketches[sketch_index]
        if sketch.complete:
            return sketch
        with self._lock:
            while not sketch.complete:
                self._expand(sketch_index, sketch, budget=self.chunk_size)
            for member in sketch.nodes:
                postings = self._membership.setdefault(member, [])
                if sketch_index not in postings:
                    postings.append(sketch_index)
        return sketch

    def _contains_after_materialize(self, sketch_index: int, node: int) -> bool:
        """Whether *node* belongs to the (fully materialised) sketch."""
        return node in self._materialize(sketch_index).nodes

    def _sketch_weights(self, sketch_index: int) -> np.ndarray:
        """Topic-weight rows of a sketch's edges, cached per sketch."""
        with self._lock:
            if sketch_index not in self._weight_cache:
                sketch = self.sketches[sketch_index]
                rows = np.asarray(sketch.edge_ids, dtype=np.int64)
                self._weight_cache[sketch_index] = self.edge_weights.weights[rows]
            return self._weight_cache[sketch_index]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def sketches_containing(self, node: int) -> List[int]:
        """Sketch indices currently containing *node* (may grow on demand)."""
        check_node_id(node, self.graph.num_nodes, "node")
        return list(self._membership.get(node, []))

    def _live_reverse_reachable(
        self, sketch_index: int, gamma: np.ndarray
    ) -> Set[int]:
        """Nodes reaching the sketch root via γ-live edges."""
        sketch = self.sketches[sketch_index]
        if sketch.num_edges == 0:
            return {sketch.root}
        weights = self._sketch_weights(sketch_index)
        live = (weights @ gamma) >= np.asarray(sketch.edge_thresholds)
        incoming: Dict[int, List[int]] = {}
        for position in np.flatnonzero(live):
            incoming.setdefault(sketch.edge_targets[position], []).append(
                sketch.edge_sources[position]
            )
        reached = {sketch.root}
        stack = [sketch.root]
        while stack:
            node = stack.pop()
            for source in incoming.get(node, ()):
                if source not in reached:
                    reached.add(source)
                    stack.append(source)
        return reached

    def estimate_user_spread(self, user: int, gamma: np.ndarray) -> float:
        """σ̂_γ({user}): real-time single-user spread estimate."""
        check_node_id(user, self.graph.num_nodes, "user")
        gamma = self._check_gamma(gamma)
        hits = 0
        for sketch_index in range(self.num_sketches):
            if not self._contains_after_materialize(sketch_index, user):
                continue  # membership pruning: user cannot reach this root
            if user in self._live_reverse_reachable(sketch_index, gamma):
                hits += 1
        return self.graph.num_nodes * hits / self.num_sketches

    def estimate_user_spread_many(
        self, user: int, gammas: np.ndarray
    ) -> np.ndarray:
        """Spread of *user* under many candidate distributions at once.

        The workhorse of keyword suggestion: evaluates all candidate keyword
        sets' γ's against each relevant sketch with a single liveness
        mat-mat product per sketch.
        """
        check_node_id(user, self.graph.num_nodes, "user")
        gammas = np.atleast_2d(np.asarray(gammas, dtype=np.float64))
        if gammas.shape[1] != self.edge_weights.num_topics:
            raise ValidationError(
                f"gammas must have {self.edge_weights.num_topics} columns, "
                f"got {gammas.shape[1]}"
            )
        hits = np.zeros(gammas.shape[0], dtype=np.int64)
        for sketch_index in range(self.num_sketches):
            if not self._contains_after_materialize(sketch_index, user):
                continue
            sketch = self.sketches[sketch_index]
            if sketch.num_edges == 0:
                if user == sketch.root:
                    hits += 1
                continue
            weights = self._sketch_weights(sketch_index)
            thresholds = np.asarray(sketch.edge_thresholds)
            live_matrix = (weights @ gammas.T) >= thresholds[:, None]
            for query_index in range(gammas.shape[0]):
                if self._reaches_root(sketch, live_matrix[:, query_index], user):
                    hits[query_index] += 1
        return self.graph.num_nodes * hits / self.num_sketches

    def _reaches_root(
        self, sketch: Sketch, live: np.ndarray, user: int
    ) -> bool:
        if user == sketch.root:
            return True
        incoming: Dict[int, List[int]] = {}
        for position in np.flatnonzero(live):
            incoming.setdefault(sketch.edge_targets[position], []).append(
                sketch.edge_sources[position]
            )
        stack = [sketch.root]
        reached = {sketch.root}
        while stack:
            node = stack.pop()
            for source in incoming.get(node, ()):
                if source == user:
                    return True
                if source not in reached:
                    reached.add(source)
                    stack.append(source)
        return False

    def estimate_seed_set_spread(
        self, seeds: Sequence[int], gamma: np.ndarray
    ) -> float:
        """σ̂_γ(S) for a seed set (used by tests against RIS baselines)."""
        gamma = self._check_gamma(gamma)
        seed_set = set(int(s) for s in seeds)
        for node in seed_set:
            check_node_id(node, self.graph.num_nodes, "seed")
        if not seed_set:
            return 0.0
        hits = 0
        for sketch_index in range(self.num_sketches):
            members = self._materialize(sketch_index).nodes
            if seed_set.isdisjoint(members):
                continue
            reached = self._live_reverse_reachable(sketch_index, gamma)
            if not seed_set.isdisjoint(reached):
                hits += 1
        return self.graph.num_nodes * hits / self.num_sketches

    def _check_gamma(self, gamma: np.ndarray) -> np.ndarray:
        gamma = check_simplex(gamma, "gamma")
        if gamma.size != self.edge_weights.num_topics:
            raise ValidationError(
                f"gamma has {gamma.size} entries for "
                f"{self.edge_weights.num_topics} topics"
            )
        return gamma

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Index-size and pruning statistics (benchmark E5 reports these)."""
        total_edges = sum(sketch.num_edges for sketch in self.sketches)
        total_pruned = sum(sketch.edges_pruned for sketch in self.sketches)
        total_nodes = sum(len(sketch.nodes) for sketch in self.sketches)
        complete = sum(1 for sketch in self.sketches if sketch.complete)
        return {
            "num_sketches": float(self.num_sketches),
            "total_edges": float(total_edges),
            "total_nodes": float(total_nodes),
            "edges_pruned_permanently": float(total_pruned),
            "complete_sketches": float(complete),
        }

"""Query and result types of the OCTOPUS keyword interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.validation import ValidationError, check_positive, check_simplex

__all__ = ["KeywordQuery", "InfluencerResult", "KeywordSuggestionResult"]


@dataclass(frozen=True)
class KeywordQuery:
    """A keyword-based influence-maximization query.

    ``keywords`` are raw user keywords; ``gamma`` is the topic distribution
    the topic model derived from them (γ of Section II-B).  ``k`` is the
    requested seed-set size.
    """

    keywords: Tuple[str, ...]
    gamma: np.ndarray
    k: int

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValidationError("query must contain at least one keyword")
        check_positive(self.k, "k")
        object.__setattr__(self, "gamma", check_simplex(self.gamma, "gamma"))
        self.gamma.setflags(write=False)

    @property
    def dominant_topic(self) -> int:
        """Topic carrying the most query mass."""
        return int(np.argmax(self.gamma))


@dataclass
class InfluencerResult:
    """Answer to a keyword IM query.

    ``seeds`` is ordered by selection; ``spreads`` holds the cumulative
    spread after each selection (the marginal structure drives the "diverse
    results" observation of Scenario 1); ``labels`` resolves seeds to user
    names when the graph is labelled.
    """

    query: KeywordQuery
    seeds: List[int]
    spread: float
    labels: List[str] = field(default_factory=list)
    marginal_gains: List[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    statistics: Dict[str, float] = field(default_factory=dict)

    def top(self, count: int) -> List[Tuple[int, str]]:
        """First *count* seeds as ``(node, label)`` pairs."""
        labels = self.labels or [f"node-{node}" for node in self.seeds]
        return list(zip(self.seeds[:count], labels[:count]))

    def __repr__(self) -> str:
        return (
            f"InfluencerResult(keywords={list(self.query.keywords)}, "
            f"k={self.query.k}, spread={self.spread:.2f})"
        )


@dataclass
class KeywordSuggestionResult:
    """Answer to a personalized influential-keywords query (§II-D).

    ``keywords`` is the selected k-sized keyword set; ``spread`` its
    estimated topic-aware influence spread for the target user; ``gamma``
    the topic distribution the set induces (rendered as the radar diagram);
    ``per_keyword_spread`` the singleton spread of each candidate that was
    evaluated, for diagnostics and UI ranking.
    """

    target: int
    target_label: str
    keywords: List[str]
    spread: float
    gamma: np.ndarray
    per_keyword_spread: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    statistics: Dict[str, float] = field(default_factory=dict)

    def radar_series(self) -> List[float]:
        """Topic-distribution series for the radar diagram."""
        return [float(value) for value in self.gamma]

    def __repr__(self) -> str:
        return (
            f"KeywordSuggestionResult(target={self.target_label!r}, "
            f"keywords={self.keywords}, spread={self.spread:.2f})"
        )

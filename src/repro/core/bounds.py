"""Upper-bound estimators for topic-aware influence spread (§II-C).

The best-effort framework "estimates an upper bound of the influence spread
for each user and then preferentially computes the exact influence spread for
the users with larger upper bounds".  Following [3] we provide three
estimators with different precomputation/query/tightness trade-offs
(benchmark E2 ablates them):

* :class:`PrecomputationBound` — per-dominant-topic interpolation grids of
  walk-sum bounds, O(1)-ish per query;
* :class:`LocalGraphBound` — walk sums computed online on the user's local
  ball under the *query's* edge probabilities, with an envelope correction
  at the boundary;
* :class:`NeighborhoodBound` — one hop of query-dependence: the user's
  out-edges under γ times precomputed envelope walk sums of the neighbours.

Soundness.  All three rest on the *walk-sum bound*: under IC the probability
that a node ``v`` becomes activated is at most the sum over all walks
``u → v`` of the product of edge probabilities (union bound over the walk
prefix trees), so

    σ(u) ≤ Σ_v Σ_{walks u→v} Π_{e∈walk} p_e  =  (Σ_t P^t 1)_u ,

capped at ``n`` since a spread never exceeds the node count.  The bound is
monotone in every edge probability, so evaluating it under any elementwise
upper bound of the query probabilities stays sound.  For query dependence we
use ``p_e(γ) ≤ λ·p_e^{z*} + (1−λ)·p̄_e`` where ``z*`` is the query's dominant
topic, ``λ = γ_{z*}`` and ``p̄`` is the topic envelope ``max_z p^z`` — exact
at ``λ=1`` (pure-topic query) and degrading gracefully to the global
envelope at ``λ=0``.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import (
    ValidationError,
    check_node_id,
    check_positive,
    check_simplex,
)

__all__ = [
    "walk_sum_bounds",
    "UpperBoundEstimator",
    "PrecomputationBound",
    "LocalGraphBound",
    "NeighborhoodBound",
]


def walk_sum_bounds(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    *,
    cap: Optional[float] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Walk-sum spread upper bound for every node.

    Computes the least fixpoint of ``x = min(cap, 1 + P x)`` by monotone
    iteration from ``x = 1``, where ``(P x)_u = Σ_{e=(u,w)} p_e x_w``.
    ``x_u`` upper-bounds σ({u}).  The cap (default ``n``) both reflects the
    trivial bound σ ≤ n and guarantees convergence when the walk series
    diverges.
    """
    probabilities = np.asarray(edge_probabilities, dtype=np.float64)
    if probabilities.shape != (graph.num_edges,):
        raise ValidationError(
            f"edge_probabilities must have shape ({graph.num_edges},), "
            f"got {probabilities.shape}"
        )
    if cap is None:
        cap = float(graph.num_nodes)
    check_positive(cap, "cap")
    check_positive(max_iterations, "max_iterations")
    sources = graph.edge_sources()
    targets = graph.out_targets
    x = np.ones(graph.num_nodes, dtype=np.float64)
    for _ in range(max_iterations):
        incoming = np.zeros(graph.num_nodes, dtype=np.float64)
        np.add.at(incoming, sources, probabilities * x[targets])
        updated = np.minimum(cap, 1.0 + incoming)
        if np.abs(updated - x).max() < tolerance:
            x = updated
            break
        x = updated
    return x


class UpperBoundEstimator(Protocol):
    """Per-user upper bounds on σ_γ({u}) for keyword queries."""

    def bounds(self, gamma: np.ndarray) -> np.ndarray:
        """Upper bound per node for topic distribution γ."""
        ...


class PrecomputationBound:
    """Precomputation-based estimator: dominant-topic interpolation grids.

    Offline, for every topic ``z`` and every grid value ``λ``, the walk-sum
    bounds are computed under the edge probabilities
    ``λ·p^z + (1−λ)·p̄`` (query probabilities are elementwise below this
    whenever the query's dominant topic is ``z`` with mass ≥ λ).  Online, a
    query reads the grid row for its dominant topic with λ *rounded down* —
    rounding down only loosens the bound, preserving soundness.

    Index size: ``O(n · Z · grid)`` floats; query: O(n) copy.
    """

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        grid: int = 5,
        *,
        max_iterations: int = 100,
    ) -> None:
        check_positive(grid, "grid")
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        self.grid_values = np.linspace(0.0, 1.0, grid + 1)
        envelope = edge_weights.max_over_topics()
        num_topics = edge_weights.num_topics
        self._tables = np.empty(
            (num_topics, len(self.grid_values), self.graph.num_nodes),
            dtype=np.float64,
        )
        for topic in range(num_topics):
            column = edge_weights.topic_column(topic)
            for level, lam in enumerate(self.grid_values):
                mixed = lam * column + (1.0 - lam) * envelope
                self._tables[topic, level] = walk_sum_bounds(
                    self.graph, mixed, max_iterations=max_iterations
                )

    def bounds(self, gamma: np.ndarray) -> np.ndarray:
        """Per-node bound: grid row of the dominant topic, λ rounded down."""
        gamma = check_simplex(gamma, "gamma")
        if gamma.size != self.edge_weights.num_topics:
            raise ValidationError(
                f"gamma has {gamma.size} entries for "
                f"{self.edge_weights.num_topics} topics"
            )
        topic = int(np.argmax(gamma))
        lam = float(gamma[topic])
        level = int(np.searchsorted(self.grid_values, lam, side="right") - 1)
        level = max(0, min(level, len(self.grid_values) - 1))
        return self._tables[topic, level].copy()

    @property
    def index_size(self) -> int:
        """Number of floats stored."""
        return int(self._tables.size)


class NeighborhoodBound:
    """Neighborhood-based estimator: one query-dependent hop.

    Every walk from ``u`` either stops at ``u`` or crosses one of ``u``'s
    out-edges first; bounding the continuation by the neighbour's envelope
    walk sum gives

        σ_γ(u) ≤ 1 + Σ_{e=(u,w)} p_e(γ) · C̄(w)

    with ``C̄`` precomputed once under the topic envelope.  Cheapest index
    (O(n)), loosest bound beyond the first hop.
    """

    def __init__(
        self, edge_weights: TopicEdgeWeights, *, max_iterations: int = 100
    ) -> None:
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        envelope = edge_weights.max_over_topics()
        self._envelope_sums = walk_sum_bounds(
            self.graph, envelope, max_iterations=max_iterations
        )

    def bounds(self, gamma: np.ndarray) -> np.ndarray:
        """Per-node bound via the first-hop decomposition."""
        probabilities = self.edge_weights.edge_probabilities(gamma)
        graph = self.graph
        sources = graph.edge_sources()
        contribution = probabilities * self._envelope_sums[graph.out_targets]
        result = np.ones(graph.num_nodes, dtype=np.float64)
        np.add.at(result, sources, contribution)
        return np.minimum(result, float(graph.num_nodes))

    @property
    def index_size(self) -> int:
        """Number of floats stored."""
        return int(self._envelope_sums.size)


class LocalGraphBound:
    """Local-graph-based estimator: exact-ish walk sums on a local ball.

    Offline, stores the radius-*r* out-ball of every node plus envelope walk
    sums.  Online, for the candidate nodes requested, iterates the walk-sum
    recursion *restricted to the ball* under the true query probabilities
    ``p(γ)``, and closes the walks leaving the ball with the boundary nodes'
    envelope walk sums.  Sound: every walk from ``u`` either stays in the
    ball (counted exactly) or exits through a boundary crossing (prefix
    exact, suffix bounded by the envelope).

    Tightest of the three near the query's topic, most expensive per query —
    hence used via :meth:`bounds_for` on a shortlist rather than all nodes.
    """

    def __init__(
        self,
        edge_weights: TopicEdgeWeights,
        radius: int = 2,
        *,
        max_iterations: int = 100,
    ) -> None:
        check_positive(radius, "radius")
        self.edge_weights = edge_weights
        self.graph = edge_weights.graph
        self.radius = radius
        envelope = edge_weights.max_over_topics()
        self._envelope_sums = walk_sum_bounds(
            self.graph, envelope, max_iterations=max_iterations
        )
        self._balls: List[np.ndarray] = []
        for node in range(self.graph.num_nodes):
            self._balls.append(self._collect_ball(node))

    def _collect_ball(self, node: int) -> np.ndarray:
        members = {node}
        frontier = [node]
        for _ in range(self.radius):
            next_frontier = []
            for current in frontier:
                for neighbor in self.graph.out_neighbors(current):
                    neighbor = int(neighbor)
                    if neighbor not in members:
                        members.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return np.asarray(sorted(members), dtype=np.int64)

    def bound_for(self, node: int, gamma: np.ndarray) -> float:
        """Bound for one *node* under γ (ball walk-sum + boundary closure)."""
        check_node_id(node, self.graph.num_nodes, "node")
        probabilities = self.edge_weights.edge_probabilities(gamma)
        return self._bound_with_probabilities(node, probabilities)

    def bounds_for(self, nodes: Sequence[int], gamma: np.ndarray) -> np.ndarray:
        """Bounds for a shortlist of *nodes* (shares the γ collapse)."""
        probabilities = self.edge_weights.edge_probabilities(gamma)
        return np.asarray(
            [self._bound_with_probabilities(int(n), probabilities) for n in nodes]
        )

    def bounds(self, gamma: np.ndarray) -> np.ndarray:
        """Bounds for all nodes (expensive; prefer :meth:`bounds_for`)."""
        probabilities = self.edge_weights.edge_probabilities(gamma)
        return np.asarray(
            [
                self._bound_with_probabilities(node, probabilities)
                for node in range(self.graph.num_nodes)
            ]
        )

    def _bound_with_probabilities(
        self, node: int, probabilities: np.ndarray
    ) -> float:
        ball = self._balls[node]
        position = {int(member): index for index, member in enumerate(ball)}
        size = len(ball)
        graph = self.graph
        cap = float(graph.num_nodes)
        # Walk mass currently at each ball node (walk-prefix sums).
        mass = np.zeros(size, dtype=np.float64)
        mass[position[node]] = 1.0
        total = 1.0  # the empty walk (node itself)
        escaped = 0.0
        # Iterate prefix extension; radius+1 extra rounds then close with a
        # geometric cap via the envelope sums of in-ball nodes as well.
        for _ in range(self.radius):
            next_mass = np.zeros(size, dtype=np.float64)
            for index, member in enumerate(ball):
                if mass[index] <= 0.0:
                    continue
                start, stop = graph.out_offsets[member], graph.out_offsets[member + 1]
                for edge_id in range(start, stop):
                    target = int(graph.out_targets[edge_id])
                    weight = mass[index] * float(probabilities[edge_id])
                    if weight <= 0.0:
                        continue
                    if target in position:
                        next_mass[position[target]] += weight
                        total += weight
                    else:
                        escaped += weight * float(self._envelope_sums[target])
            mass = next_mass
        # Walks still inside the ball after `radius` steps may continue
        # arbitrarily: close them with the envelope walk sums (which count
        # the node itself, already included in `total`, hence the −1).
        residual = float(
            (mass * np.maximum(self._envelope_sums[ball] - 1.0, 0.0)).sum()
        )
        return float(min(cap, total + escaped + residual))

    @property
    def index_size(self) -> int:
        """Number of stored ball entries plus envelope sums."""
        return int(sum(len(ball) for ball in self._balls)) + int(
            self._envelope_sums.size
        )

"""The zero-copy shared-memory data plane for cross-process payloads.

Process workers (:class:`~repro.backend.pools.ProcessPoolBackend`) and
cluster shards (:mod:`repro.cluster`) produce large flat int64 payloads —
packed RR-set ``(nodes, offsets)`` chunks, greedy-cover ``coverage`` /
``first_seen`` vectors — that historically crossed the pipe as pickles.
This module gives producers a **shared-memory arena** to write those arrays
into, so only a tiny :class:`ShmSlice` descriptor (segment name, byte
offset, element counts) crosses the pipe and the parent reconstructs NumPy
views zero-copy with :meth:`ShmArena.read`.

Why file-backed ``mmap`` and not :mod:`multiprocessing.shared_memory`
----------------------------------------------------------------------

``SharedMemory`` routes every attach through the resource tracker, which on
CPython 3.10–3.12 (bpo-38119) can unlink a segment while a sibling process
still uses it and spews ``KeyError`` noise at interpreter exit.  The arena
instead maps plain files created in ``/dev/shm`` (RAM-backed tmpfs on
Linux; transparent tempdir fallback elsewhere), collected under **one
parent-owned session directory**:

* every file — including those a worker grows after the fork — lives in
  that directory, so the parent's ``rmtree`` on close (or its GC
  finalizer) reclaims *everything*, even after a ``SIGKILL``-ed child:
  children never own segments, so a crashed shard cannot leak one;
* files are created with ``ftruncate`` and therefore **sparse**: a
  generously sized arena costs no memory until pages are actually written;
* under the ``fork`` start method the initial mapping is simply inherited
  (``MAP_SHARED`` survives the fork), so no name-passing handshake is
  needed for the common case.

Lifecycle and safety rules
--------------------------

The arena is a **single-writer bump allocator**: exactly one process
writes (the worker/shard), the parent only reads.  Writers never unlink the
base file; ``reset()`` rewinds the bump pointer and unlinks any grow-files
the writer itself created.  Readers must finish consuming (or copy out of)
a slice's views before the writer is allowed to reset — the pool backend
enforces this with transport-window epochs, the cluster with its strict
one-command-in-flight request/reply ordering.

``REPRO_SHM=0`` (or ``off`` / ``pickle``) disables the data plane entirely
and keeps the historical pickle transport as a byte-identical twin,
mirroring the ``REPRO_NATIVE`` pattern; platforms without the ``fork``
start method fall back automatically.  Which transport ran is pure
observability (``execution.payload_transport`` in the stats snapshots) —
never an answer change.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import shutil
import tempfile
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.env import env_positive_int, env_switch

__all__ = [
    "DEFAULT_ARENA_BYTES",
    "ShmArena",
    "ShmSession",
    "ShmSlice",
    "payload_transport",
    "shm_enabled",
    "shm_root",
]

#: Session directories are named ``<prefix><random>`` under :func:`shm_root`
#: — the leak-accounting fixtures key on this prefix.
SESSION_PREFIX = "repro-shm-"

#: Initial capacity of one arena file.  Files are sparse (``ftruncate``),
#: so a generous default costs nothing until written; override with
#: ``REPRO_SHM_ARENA_BYTES``.
DEFAULT_ARENA_BYTES = 32 * 1024 * 1024

#: Slices start on this alignment (cache-line; also satisfies int64).
_ALIGN = 64

_DISABLING_VALUES = ("0", "off", "pickle")
_ENABLING_VALUES = ("", "1", "on", "shm")


def shm_enabled() -> bool:
    """Whether the shared-memory data plane is available and not opted out.

    ``REPRO_SHM=0`` / ``off`` / ``pickle`` forces the pickle twin; the
    arena also needs the ``fork`` start method (the initial mapping is
    inherited, and descriptors name files only the forked family can
    resolve), so non-POSIX platforms fall back automatically.  Any other
    value (``REPRO_SHM=maybe``) raises a
    :class:`~repro.utils.validation.ValidationError` at startup rather
    than silently picking a transport.
    """
    if not env_switch("REPRO_SHM", on=_ENABLING_VALUES, off=_DISABLING_VALUES):
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def payload_transport() -> str:
    """Provenance string for stats snapshots: ``"shm"`` or ``"pickle"``."""
    return "shm" if shm_enabled() else "pickle"


def shm_root() -> str:
    """Directory session dirs are created in: ``/dev/shm`` when usable
    (RAM-backed tmpfs), the platform tempdir otherwise."""
    candidate = "/dev/shm"
    if os.path.isdir(candidate) and os.access(candidate, os.W_OK):
        return candidate
    return tempfile.gettempdir()


def default_arena_bytes() -> int:
    """Per-arena initial capacity (``REPRO_SHM_ARENA_BYTES`` override).

    A malformed or non-positive override raises a
    :class:`~repro.utils.validation.ValidationError` when the first arena
    is sized — never a silent fall back to the default.
    """
    return env_positive_int("REPRO_SHM_ARENA_BYTES", DEFAULT_ARENA_BYTES)


@dataclass(frozen=True)
class ShmSlice:
    """Descriptor of int64 arrays written back-to-back into one segment.

    This is what crosses the pipe instead of the arrays themselves: a
    segment (file) name relative to the session directory, the byte offset
    of the first array, and the element count of each.  Arrays are stored
    contiguously in declaration order, each 8-byte aligned (int64 packing
    is naturally aligned once the slice start is).
    """

    segment: str
    offset: int
    lengths: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Total payload bytes the descriptor points at."""
        return 8 * sum(self.lengths)


def _remove_session_dir(path: str, owner_pid: int) -> None:
    """Finalizer: remove the session directory — in the owner only.

    Forked children inherit the parent's :class:`ShmSession` object *and*
    its ``weakref.finalize`` callback; without the pid guard a child's
    interpreter exit would rmtree the directory out from under the live
    parent.
    """
    if os.getpid() != owner_pid:
        return
    shutil.rmtree(path, ignore_errors=True)


class ShmSession:
    """One parent-owned directory holding every arena file of a pool/cluster.

    The session is the leak-proofing unit: *all* arena files — the
    pre-fork bases and any files workers grow afterwards — are created
    inside it, so :meth:`close` (or the GC finalizer, pid-guarded against
    forked children) reclaims every byte regardless of how the children
    died.
    """

    def __init__(self) -> None:
        self.path = tempfile.mkdtemp(prefix=SESSION_PREFIX, dir=shm_root())
        self.owner_pid = os.getpid()
        self._finalizer = weakref.finalize(
            self, _remove_session_dir, self.path, self.owner_pid
        )

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Remove the directory and everything in it (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:
        return f"ShmSession(path={self.path!r}, closed={self.closed})"


class ShmArena:
    """Single-writer bump allocator over mmap'd files in a session dir.

    Created by the parent **before** forking, so the writer child inherits
    the base mapping; the parent keeps its own copy of the object as the
    reader endpoint.  After the fork the two copies diverge (each has its
    own bump pointer and map cache) but address the same physical pages.

    Writer protocol: :meth:`write_arrays` appends, :meth:`reset` rewinds
    (and unlinks any grow-files this writer created).  Reader protocol:
    :meth:`read` materialises read-only views for a descriptor, opening
    grow-files by name on demand.
    """

    def __init__(
        self,
        session: ShmSession,
        name: str,
        capacity: Optional[int] = None,
    ) -> None:
        self.session_path = session.path
        self.base_segment = name
        self._maps: Dict[str, mmap.mmap] = {}
        self._current = name
        self._offset = 0
        self._grow_serial = 0
        # Concurrent reader threads (overlapping transport windows) may
        # race to open the same grow-file; the lock keeps the cache sane.
        self._io_lock = threading.Lock()
        self._create_segment(name, capacity or default_arena_bytes())

    @classmethod
    def reader(cls, session: ShmSession) -> "ShmArena":
        """A read-only endpoint over a session (creates no segment).

        Segments are opened by descriptor name on demand, so one reader
        serves every writer arena in the session — the pool parent uses
        this to resolve descriptors from any worker.
        """
        arena = object.__new__(cls)
        arena.session_path = session.path
        arena.base_segment = ""
        arena._maps = {}
        arena._current = ""
        arena._offset = 0
        arena._grow_serial = 0
        arena._io_lock = threading.Lock()
        return arena

    # -- shared plumbing ------------------------------------------------

    def _create_segment(self, name: str, capacity: int) -> None:
        path = os.path.join(self.session_path, name)
        fd = os.open(path, os.O_CREAT | os.O_RDWR | os.O_EXCL, 0o600)
        try:
            os.ftruncate(fd, capacity)
            self._maps[name] = mmap.mmap(fd, capacity)
        finally:
            os.close(fd)

    def _open_segment(self, name: str) -> mmap.mmap:
        """Reader side: map a segment another process created, by name."""
        path = os.path.join(self.session_path, name)
        fd = os.open(path, os.O_RDWR)
        try:
            segment = mmap.mmap(fd, os.fstat(fd).st_size)
        finally:
            os.close(fd)
        self._maps[name] = segment
        return segment

    # -- writer side ----------------------------------------------------

    def write_arrays(self, arrays: Sequence[np.ndarray]) -> ShmSlice:
        """Append *arrays* (coerced to int64) contiguously; return a slice.

        Grows into a fresh segment file when the current one cannot hold
        the payload — the new file still lives in the (parent-owned)
        session directory, so crash cleanup is unaffected.  Raises
        ``OSError`` when the filesystem refuses (callers fall back to the
        inline pickle payload).
        """
        flats = [
            np.ascontiguousarray(array, dtype=np.int64) for array in arrays
        ]
        total = 8 * sum(flat.size for flat in flats)
        start = -(-self._offset // _ALIGN) * _ALIGN
        segment = self._maps[self._current]
        if start + total > len(segment):
            segment = self._grow(total)
            start = 0
        position = start
        for flat in flats:
            if flat.size:
                view = np.frombuffer(
                    segment, dtype=np.int64, count=flat.size, offset=position
                )
                view[:] = flat
            position += 8 * flat.size
        self._offset = position
        return ShmSlice(
            segment=self._current,
            offset=start,
            lengths=tuple(flat.size for flat in flats),
        )

    def _grow(self, min_bytes: int) -> mmap.mmap:
        """Switch writing to a fresh, larger segment file."""
        current_capacity = len(self._maps[self._current])
        capacity = max(2 * current_capacity, min_bytes + _ALIGN)
        self._grow_serial += 1
        name = f"{self.base_segment}.g{self._grow_serial}"
        self._create_segment(name, capacity)
        self._current = name
        self._offset = 0
        return self._maps[name]

    def reset(self) -> None:
        """Rewind to an empty arena; unlink grow-files this writer made.

        Only the writer calls this, and only when the owning transport
        guarantees no reader still needs earlier slices (epoch handshake
        in the pool backend, strict request/reply ordering in the
        cluster).  The base segment is kept mapped — its sparse pages are
        simply overwritten by later writes.
        """
        for name in list(self._maps):
            if name == self.base_segment:
                continue
            self._maps.pop(name).close()
            try:
                os.unlink(os.path.join(self.session_path, name))
            except OSError:  # pragma: no cover — already gone
                pass
        self._current = self.base_segment
        self._offset = 0

    # -- reader side ----------------------------------------------------

    def read(self, ref: ShmSlice) -> List[np.ndarray]:
        """Zero-copy read-only views for every array in *ref*.

        The views alias shared pages the writer may later overwrite (after
        the transport's reset handshake) — consumers must copy anything
        they keep past the exchange, which every current consumer does by
        construction (``PackedRRSets.from_chunks`` concatenates, the
        cluster merge arithmetic allocates fresh arrays).
        """
        with self._io_lock:
            segment = self._maps.get(ref.segment)
            if segment is None:
                segment = self._open_segment(ref.segment)
        views: List[np.ndarray] = []
        position = ref.offset
        for count in ref.lengths:
            view = np.frombuffer(
                segment, dtype=np.int64, count=count, offset=position
            )
            view.setflags(write=False)
            views.append(view)
            position += 8 * count
        return views

    def close(self) -> None:
        """Drop every mapping (files are reclaimed by the session dir)."""
        for segment in self._maps.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover — live exported views
                pass
        self._maps.clear()

    def __repr__(self) -> str:
        return (
            f"ShmArena(base={self.base_segment!r}, current={self._current!r}, "
            f"offset={self._offset})"
        )

"""Pooled execution backends: shared-memory threads and forked processes.

Both create their executor lazily on first use, so constructing a backend
(e.g. inside :class:`~repro.core.octopus.OctopusConfig` plumbing) costs
nothing until work is actually dispatched, and both keep the pool alive
across calls — index builds issue many small ``map_chunks`` rounds and
per-call pool startup would dominate.

Choosing between them:

* :class:`ThreadPoolBackend` shares memory, so chunks carry no pickling
  cost; CPython's GIL limits its speedup for pure-Python hot loops, but
  NumPy-heavy chunks and anything releasing the GIL scale.
* :class:`ProcessPoolBackend` sidesteps the GIL entirely.  Chunk arguments
  and results cross a pickle boundary, but the heavyweight sampling inputs
  — the graph's CSR arrays and the per-edge probabilities — are adopted
  *once per worker* through the pool initializer (plus fork inheritance
  where available) and addressed by an integer token per chunk, so the
  steady-state queue traffic is a few ints out and two flat packed arrays
  back per chunk.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.base import (
    ExecutionBackend,
    _discard_sampling_state,
    _install_sampling_state,
    _publish_sampling_state,
    _SHARED_SAMPLING_STATE,
    default_worker_count,
)
from repro.utils.validation import check_positive

__all__ = ["ThreadPoolBackend", "ProcessPoolBackend"]

# How many distinct (graph, edge-probability) payloads one process pool
# keeps adopted at a time.  An index build uses one; a query stream rotates
# through a few probability vectors.  Evicting simply forces a republish
# (and a cheap fork-based pool restart) if an old payload comes back.
_MAX_SHARED_PAYLOADS = 8


def _discard_published_tokens(published: "OrderedDict[Any, int]") -> None:
    """Release a backend's registry entries (``close()`` and GC finalizer).

    Takes the live ``_published`` mapping, not the backend (a finalizer
    callback must not reference its own object); after ``close()`` the
    mapping is empty and this is a no-op.
    """
    for token in published.values():
        _discard_sampling_state(token)
    published.clear()


class _PooledBackend(ExecutionBackend):
    """Common lazy-pool lifecycle for the two pooled backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = (
            int(workers) if workers is not None else default_worker_count()
        )
        check_positive(self._workers, "workers")
        self._executor: Optional[Executor] = None
        # One backend may be shared by concurrent query threads (e.g. the
        # thread-mode service executor over a process-backed Octopus); the
        # lock keeps the lazy creation from racing and leaking a pool.
        self._executor_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _pool(self) -> Executor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Dispatch chunks to the pool; results come back in input order."""
        if not chunks:
            return []
        if len(chunks) == 1:
            # One chunk can't parallelise; skip the dispatch overhead.
            return [function(chunks[0])]
        return list(self._pool().map(function, chunks))

    def close(self) -> None:
        """Shut the pool down and forget it (a later call restarts it)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


class ThreadPoolBackend(_PooledBackend):
    """Chunks run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`."""

    name = "threads"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-backend"
        )


class ProcessPoolBackend(_PooledBackend):
    """Chunks run on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Uses the ``fork`` start method where available (cheap copy-on-write
    worker startup).  RR-sampling inputs are *adopted* rather than shipped:
    :meth:`_sampling_payload` registers the graph and edge-probability
    arrays in the module-level shared registry — keyed by graph identity
    plus a digest of the probability bytes, so repeated queries with equal
    probabilities reuse the entry — and chunks carry only an integer
    token.  Workers receive the registry once per worker, at pool
    creation, through the pool initializer (free under fork's copy-on-write
    memory; one pickle per worker under spawn).

    A payload the live pool predates is handled without ever yanking the
    pool from under concurrent callers: if the pool is idle it is retired
    under the lock and the next dispatch re-forks with the grown registry
    (milliseconds under fork); if maps are in flight, this one call ships
    the arrays inline with its chunks — the pre-adoption behaviour — and
    adoption picks up again at the next idle publish.  ``close()`` drops
    the backend's registry entries, so discarded backends pin no arrays.
    """

    name = "processes"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers)
        # (id(graph), probability-digest) -> token, insertion-ordered for
        # FIFO eviction.  The registry holds strong references, so the
        # graph id stays valid for exactly as long as the mapping exists.
        # All mutations happen under _executor_lock.
        self._published: OrderedDict[Tuple[int, bytes], int] = OrderedDict()
        self._executor_tokens: frozenset = frozenset()
        self._inflight = 0
        # A backend dropped without close() must not pin its graphs in the
        # module registry forever.
        self._registry_finalizer = weakref.finalize(
            self, _discard_published_tokens, self._published
        )

    def _make_executor(self) -> Executor:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX platforms
            context = multiprocessing.get_context()
        # Workers adopt the registry as of this fork; remember which
        # tokens they know so later publishes can tell new from adopted.
        self._executor_tokens = frozenset(_SHARED_SAMPLING_STATE)
        return ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=context,
            initializer=_install_sampling_state,
            initargs=(dict(_SHARED_SAMPLING_STATE),),
        )

    def _sampling_payload(self, graph: Any, edge_probabilities: np.ndarray) -> Any:
        """Adopt the sampling inputs once per worker; chunks get a token."""
        key = (
            id(graph),
            hashlib.blake2b(edge_probabilities.tobytes(), digest_size=16).digest(),
        )
        with self._executor_lock:
            token = self._published.get(key)
            if token is None:
                token = _publish_sampling_state(graph, edge_probabilities)
                self._published[key] = token
                # FIFO safety valve; in the (pathological) event a just-
                # evicted token is still headed for a not-yet-forked pool,
                # the worker raises rather than miscomputes.
                while len(self._published) > _MAX_SHARED_PAYLOADS:
                    _, stale = self._published.popitem(last=False)
                    _discard_sampling_state(stale)
            if self._executor is None or token in self._executor_tokens:
                # Either the next dispatch forks with the registry as it
                # stands now, or the live pool already adopted this token.
                return token
            if self._inflight == 0:
                # Live pool predates the payload but nothing is running:
                # retire it; the next dispatch re-forks with the token.
                executor, self._executor = self._executor, None
                executor.shutdown(wait=True)
                return token
            # Busy pool: don't disturb in-flight maps — this call ships
            # the arrays with its chunks (the pre-adoption behaviour).
            return (graph, edge_probabilities)

    def close(self) -> None:
        """Shut the pool down and release this backend's shared payloads."""
        with self._executor_lock:
            _discard_published_tokens(self._published)
            self._executor_tokens = frozenset()
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Dispatch chunks, batching queue traffic for many small chunks."""
        if not chunks:
            return []
        if len(chunks) == 1:
            return [function(chunks[0])]
        batch = max(1, len(chunks) // (self._workers * 4))
        with self._executor_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            executor = self._executor
            # Publishes see _inflight > 0 and route around the live pool
            # instead of shutting it down mid-map.
            self._inflight += 1
        try:
            return list(executor.map(function, chunks, chunksize=batch))
        finally:
            with self._executor_lock:
                self._inflight -= 1

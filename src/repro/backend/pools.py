"""Pooled execution backends: shared-memory threads and forked processes.

Both create their executor lazily on first use, so constructing a backend
(e.g. inside :class:`~repro.core.octopus.OctopusConfig` plumbing) costs
nothing until work is actually dispatched, and both keep the pool alive
across calls — index builds issue many small ``map_chunks`` rounds and
per-call pool startup would dominate.

Choosing between them:

* :class:`ThreadPoolBackend` shares memory, so chunks carry no pickling
  cost; CPython's GIL limits its speedup for pure-Python hot loops, but
  NumPy-heavy chunks and anything releasing the GIL scale.
* :class:`ProcessPoolBackend` sidesteps the GIL entirely; chunk arguments
  and results cross a pickle boundary, so it wins when chunks are
  compute-heavy relative to their payload (RR sampling at realistic set
  counts qualifies).
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from repro.backend.base import ExecutionBackend, default_worker_count
from repro.utils.validation import check_positive

__all__ = ["ThreadPoolBackend", "ProcessPoolBackend"]


class _PooledBackend(ExecutionBackend):
    """Common lazy-pool lifecycle for the two pooled backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = (
            int(workers) if workers is not None else default_worker_count()
        )
        check_positive(self._workers, "workers")
        self._executor: Optional[Executor] = None
        # One backend may be shared by concurrent query threads (e.g. the
        # thread-mode service executor over a process-backed Octopus); the
        # lock keeps the lazy creation from racing and leaking a pool.
        self._executor_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _pool(self) -> Executor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Dispatch chunks to the pool; results come back in input order."""
        if not chunks:
            return []
        if len(chunks) == 1:
            # One chunk can't parallelise; skip the dispatch overhead.
            return [function(chunks[0])]
        return list(self._pool().map(function, chunks))

    def close(self) -> None:
        """Shut the pool down and forget it (a later call restarts it)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


class ThreadPoolBackend(_PooledBackend):
    """Chunks run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`."""

    name = "threads"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-backend"
        )


class ProcessPoolBackend(_PooledBackend):
    """Chunks run on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Uses the ``fork`` start method where available (cheap copy-on-write
    worker startup; the graphs being sampled are inherited, though chunk
    arguments still travel by pickle through the task queue).
    """

    name = "processes"

    def _make_executor(self) -> Executor:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX platforms
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=self._workers, mp_context=context
        )

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Dispatch chunks, batching queue traffic for many small chunks."""
        if not chunks:
            return []
        if len(chunks) == 1:
            return [function(chunks[0])]
        batch = max(1, len(chunks) // (self._workers * 4))
        return list(self._pool().map(function, chunks, chunksize=batch))

"""Pooled execution backends: shared-memory threads and forked processes.

Both create their executor lazily on first use, so constructing a backend
(e.g. inside :class:`~repro.core.octopus.OctopusConfig` plumbing) costs
nothing until work is actually dispatched, and both keep the pool alive
across calls — index builds issue many small ``map_chunks`` rounds and
per-call pool startup would dominate.

Choosing between them:

* :class:`ThreadPoolBackend` shares memory, so chunks carry no pickling
  cost; CPython's GIL limits its speedup for pure-Python hot loops, but
  NumPy-heavy chunks and anything releasing the GIL scale.
* :class:`ProcessPoolBackend` sidesteps the GIL entirely.  Chunk arguments
  and results cross a pickle boundary, but the heavyweight sampling inputs
  — the graph's CSR arrays and the per-edge probabilities — are adopted
  *once per worker* through the pool initializer (plus fork inheritance
  where available) and addressed by an integer token per chunk, so the
  steady-state queue traffic is a few ints out and two flat packed arrays
  back per chunk.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import multiprocessing
import os
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import stage as _trace_stage
from repro.backend.base import (
    ExecutionBackend,
    _discard_sampling_state,
    _install_sampling_state,
    _publish_sampling_state,
    _sample_rr_chunk,
    _SHARED_SAMPLING_STATE,
    default_worker_count,
)
from repro.backend.shm import ShmArena, ShmSession, ShmSlice, shm_enabled
from repro.propagation.packed import PackedRRSets
from repro.utils.validation import check_positive

__all__ = ["ThreadPoolBackend", "ProcessPoolBackend"]

#: Uniquifies arena base-segment names across backends and nested forks
#: (a forked replica building its own pool writes into the same session
#: directory — names must not collide with its siblings').
_ARENA_SERIAL = itertools.count()

# How many distinct (graph, edge-probability) payloads one process pool
# keeps adopted at a time.  An index build uses one; a query stream rotates
# through a few probability vectors.  Evicting simply forces a republish
# (and a cheap fork-based pool restart) if an old payload comes back.
_MAX_SHARED_PAYLOADS = 8


# ----------------------------------------------------------------------
# Worker-side shared-memory state (process pools)
# ----------------------------------------------------------------------
#
# The parent creates one arena per worker slot before the pool forks and
# ships them — plus an epoch counter and a claim counter — through the
# pool initializer (inherited memory under fork; the bundle is None under
# any other start method, where shm is disabled anyway).  Each worker
# claims one arena and appends chunk payloads to it; the parent bumps the
# epoch only when no transport window is open, and the worker rewinds its
# arena lazily when it observes the bump.  That handshake guarantees a
# worker never overwrites bytes a parent thread may still be reading.


class _WorkerShm:
    """This worker process's arena plus the epoch handshake state."""

    __slots__ = ("arena", "epoch", "seen_epoch")

    def __init__(self, arena: ShmArena, epoch: Any) -> None:
        self.arena = arena
        self.epoch = epoch
        self.seen_epoch = int(epoch.value)

    def write(self, arrays: Sequence[np.ndarray]) -> Optional[ShmSlice]:
        """Append *arrays*; ``None`` when the filesystem refuses (the
        caller then falls back to the inline pickle payload)."""
        current = int(self.epoch.value)
        if current != self.seen_epoch:
            self.arena.reset()
            self.seen_epoch = current
        try:
            return self.arena.write_arrays(arrays)
        except OSError:
            return None


_WORKER_SHM: Optional[_WorkerShm] = None


def _install_worker_state(
    entries: Dict[int, Tuple[Any, np.ndarray]], shm_bundle: Optional[Tuple]
) -> None:
    """Pool initializer: adopt the registry and claim one arena slot."""
    _install_sampling_state(entries)
    if shm_bundle is None:
        return
    arenas, epoch, claim = shm_bundle
    with claim.get_lock():
        index = claim.value
        claim.value += 1
    if index < len(arenas):
        global _WORKER_SHM
        _WORKER_SHM = _WorkerShm(arenas[index], epoch)


def _sample_rr_chunk_shm(task: Tuple) -> Any:
    """Chunk worker of the shm data plane: sample, write, send a slice.

    Runs :func:`repro.backend.base._sample_rr_chunk` and moves the packed
    payload into this worker's arena, returning only the
    :class:`~repro.backend.shm.ShmSlice` descriptor.  Executed in the
    parent (the single-chunk shortcut) or on a worker whose arena claim
    failed, it degrades to returning the raw arrays — the assembler
    accepts both shapes, and the bytes are identical either way.
    """
    nodes, offsets = _sample_rr_chunk(task)
    state = _WORKER_SHM
    if state is None:
        return nodes, offsets
    ref = state.write((nodes, offsets))
    if ref is None:
        return nodes, offsets
    return ref


def _discard_published_tokens(published: "OrderedDict[Any, int]") -> None:
    """Release a backend's registry entries (``close()`` and GC finalizer).

    Takes the live ``_published`` mapping, not the backend (a finalizer
    callback must not reference its own object); after ``close()`` the
    mapping is empty and this is a no-op.
    """
    for token in published.values():
        _discard_sampling_state(token)
    published.clear()


class _PooledBackend(ExecutionBackend):
    """Common lazy-pool lifecycle for the two pooled backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = (
            int(workers) if workers is not None else default_worker_count()
        )
        check_positive(self._workers, "workers")
        self._executor: Optional[Executor] = None
        # One backend may be shared by concurrent query threads (e.g. the
        # thread-mode service executor over a process-backed Octopus); the
        # lock keeps the lazy creation from racing and leaking a pool.
        self._executor_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _pool(self) -> Executor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Dispatch chunks to the pool; results come back in input order.

        The whole dispatch is one ``backend.map_chunks`` trace stage —
        under an active request trace the sampling fan-out shows up as a
        single wall-time entry (a no-op otherwise).
        """
        if not chunks:
            return []
        with _trace_stage("backend.map_chunks"):
            if len(chunks) == 1:
                # One chunk can't parallelise; skip the dispatch overhead.
                return [function(chunks[0])]
            return list(self._pool().map(function, chunks))

    def close(self) -> None:
        """Shut the pool down and forget it (a later call restarts it)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


class ThreadPoolBackend(_PooledBackend):
    """Chunks run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`."""

    name = "threads"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-backend"
        )


class ProcessPoolBackend(_PooledBackend):
    """Chunks run on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Uses the ``fork`` start method where available (cheap copy-on-write
    worker startup).  RR-sampling inputs are *adopted* rather than shipped:
    :meth:`_sampling_payload` registers the graph and edge-probability
    arrays in the module-level shared registry — keyed by graph identity
    plus a digest of the probability bytes, so repeated queries with equal
    probabilities reuse the entry — and chunks carry only an integer
    token.  Workers receive the registry once per worker, at pool
    creation, through the pool initializer (free under fork's copy-on-write
    memory; one pickle per worker under spawn).

    A payload the live pool predates is handled without ever yanking the
    pool from under concurrent callers: if the pool is idle it is retired
    under the lock and the next dispatch re-forks with the grown registry
    (milliseconds under fork); if maps are in flight, this one call ships
    the arrays inline with its chunks — the pre-adoption behaviour — and
    adoption picks up again at the next idle publish.  ``close()`` drops
    the backend's registry entries, so discarded backends pin no arrays.

    Chunk *results* travel the other way through the shared-memory data
    plane (:mod:`repro.backend.shm`) when it is enabled: each worker owns
    an arena in a parent-owned session directory, writes its packed
    ``(nodes, offsets)`` payloads there and returns only descriptors; the
    parent assembles the batch from zero-copy views inside a *transport
    window* and bumps a shared epoch when the last window closes, at which
    point workers rewind their arenas.  ``REPRO_SHM=0`` (or a platform
    without ``fork``) keeps the historical pickle transport — byte-
    identical output either way.
    """

    name = "processes"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers)
        # Shared-memory data plane (populated lazily, fork contexts only).
        self._shm_session: Optional[ShmSession] = None
        self._shm_arenas: List[ShmArena] = []
        self._shm_reader: Optional[ShmArena] = None
        self._shm_epoch: Optional[Any] = None
        self._shm_windows = 0
        # (id(graph), probability-digest) -> token, insertion-ordered for
        # FIFO eviction.  The registry holds strong references, so the
        # graph id stays valid for exactly as long as the mapping exists.
        # All mutations happen under _executor_lock.
        self._published: OrderedDict[Tuple[int, bytes], int] = OrderedDict()
        self._executor_tokens: frozenset = frozenset()
        self._inflight = 0
        # A backend dropped without close() must not pin its graphs in the
        # module registry forever.
        self._registry_finalizer = weakref.finalize(
            self, _discard_published_tokens, self._published
        )

    def _make_executor(self) -> Executor:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX platforms
            context = multiprocessing.get_context()
        # Workers adopt the registry as of this fork; remember which
        # tokens they know so later publishes can tell new from adopted.
        self._executor_tokens = frozenset(_SHARED_SAMPLING_STATE)
        shm_bundle = None
        if context.get_start_method() == "fork" and shm_enabled():
            if self._shm_session is None or self._shm_session.closed:
                self._shm_session = ShmSession()
            if not self._shm_arenas:
                # One arena set per backend lifetime: pool restarts
                # re-fork against the same arenas (restarts only happen
                # with no work in flight, so no reader can hold stale
                # views).  A forked replica arrives here with a cleared
                # data plane (_reset_shm_after_fork) but the *inherited*
                # session directory, so the arenas it builds — pid-unique
                # names — are still reclaimed by the original parent's
                # rmtree even if this replica is killed outright.
                serial = next(_ARENA_SERIAL)
                prefix = f"pool-{os.getpid()}-{serial}"
                self._shm_arenas = [
                    ShmArena(self._shm_session, f"{prefix}-w{index}")
                    for index in range(self._workers)
                ]
                self._shm_reader = ShmArena.reader(self._shm_session)
                # lock=False: the parent is the only writer (and only
                # between windows); workers just read the counter.
                self._shm_epoch = context.Value("Q", 0, lock=False)
            # A fresh claim counter per pool generation: lazily spawned
            # workers each take the next arena slot.
            claim = context.Value("i", 0)
            shm_bundle = (self._shm_arenas, self._shm_epoch, claim)
        return ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=context,
            initializer=_install_worker_state,
            initargs=(dict(_SHARED_SAMPLING_STATE), shm_bundle),
        )

    def _sampling_payload(self, graph: Any, edge_probabilities: np.ndarray) -> Any:
        """Adopt the sampling inputs once per worker; chunks get a token."""
        key = (
            id(graph),
            hashlib.blake2b(edge_probabilities.tobytes(), digest_size=16).digest(),
        )
        with self._executor_lock:
            token = self._published.get(key)
            if token is None:
                token = _publish_sampling_state(graph, edge_probabilities)
                self._published[key] = token
                # FIFO safety valve; in the (pathological) event a just-
                # evicted token is still headed for a not-yet-forked pool,
                # the worker raises rather than miscomputes.
                while len(self._published) > _MAX_SHARED_PAYLOADS:
                    _, stale = self._published.popitem(last=False)
                    _discard_sampling_state(stale)
            if self._executor is None or token in self._executor_tokens:
                # Either the next dispatch forks with the registry as it
                # stands now, or the live pool already adopted this token.
                return token
            if self._inflight == 0:
                # Live pool predates the payload but nothing is running:
                # retire it; the next dispatch re-forks with the token.
                executor, self._executor = self._executor, None
                executor.shutdown(wait=True)
                return token
            # Busy pool: don't disturb in-flight maps — this call ships
            # the arrays with its chunks (the pre-adoption behaviour).
            return (graph, edge_probabilities)

    # -- the shared-memory data plane -----------------------------------

    @property
    def payload_transport(self) -> str:
        """``"shm"`` when the arena data plane will carry chunk payloads,
        ``"pickle"`` otherwise (``REPRO_SHM=0`` or no ``fork``)."""
        return "shm" if shm_enabled() else "pickle"

    @contextlib.contextmanager
    def _transport_window(self) -> Iterator[None]:
        """Scope during which arena slices handed to this thread stay valid.

        Counts as in-flight work (so a concurrent publish never retires
        the pool — and with it the arenas — mid-assembly) and bumps the
        shared epoch when the *last* concurrent window closes, signalling
        workers to rewind their arenas before the next write.
        """
        with self._executor_lock:
            self._inflight += 1
            self._shm_windows += 1
        try:
            yield
        finally:
            with self._executor_lock:
                self._inflight -= 1
                self._shm_windows -= 1
                if self._shm_windows == 0 and self._shm_epoch is not None:
                    self._shm_epoch.value += 1

    def _collect_packed(self, num_nodes: int, tasks: Sequence[Tuple]) -> PackedRRSets:
        """Assemble chunk results, moving payloads through the arena.

        Workers return :class:`~repro.backend.shm.ShmSlice` descriptors
        (or raw arrays on the shortcut/fallback paths); the parent turns
        descriptors into zero-copy views and concatenates — all inside the
        transport window, so nothing can overwrite the views first.  The
        assembled batch owns fresh arrays and outlives the window safely.
        """
        if not shm_enabled():
            return super()._collect_packed(num_nodes, tasks)
        with self._transport_window():
            chunks = self.map_chunks(_sample_rr_chunk_shm, tasks)
            reader = self._shm_reader
            resolved = [
                tuple(reader.read(chunk)) if isinstance(chunk, ShmSlice) else chunk
                for chunk in chunks
            ]
            return PackedRRSets.from_chunks(num_nodes, resolved)

    def _reset_shm_after_fork(self) -> None:
        """Fork hygiene: a replica must not touch its parent's data plane.

        Called by worker initializers that adopt a forked service replica
        (:func:`repro.service.concurrent._adopt_worker_service`,
        :func:`repro.cluster.worker.shard_main`).  The parent's arenas,
        reader and epoch belong to the parent's pool; the *session* is
        kept — its finalizer is pid-guarded, and building this replica's
        own arenas inside the inherited directory keeps them under the
        original parent's crash cleanup.
        """
        self._shm_arenas = []
        self._shm_reader = None
        self._shm_epoch = None
        self._shm_windows = 0

    def _teardown_shm(self) -> None:
        """Drop arenas and remove the session directory (owner only)."""
        for arena in self._shm_arenas:
            arena.close()
        if self._shm_reader is not None:
            self._shm_reader.close()
        self._shm_arenas = []
        self._shm_reader = None
        self._shm_epoch = None
        session, self._shm_session = self._shm_session, None
        if session is not None:
            session.close()

    def close(self) -> None:
        """Shut the pool down and release this backend's shared payloads."""
        with self._executor_lock:
            _discard_published_tokens(self._published)
            self._executor_tokens = frozenset()
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        with self._executor_lock:
            self._teardown_shm()

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Dispatch chunks, batching queue traffic for many small chunks.

        Wrapped in a ``backend.map_chunks`` trace stage like the thread
        pool's, so per-request timings name the sampling fan-out the
        same way whichever pool ran it.
        """
        if not chunks:
            return []
        if len(chunks) == 1:
            with _trace_stage("backend.map_chunks"):
                return [function(chunks[0])]
        batch = max(1, len(chunks) // (self._workers * 4))
        with self._executor_lock:
            if self._executor is None:
                self._executor = self._make_executor()
            executor = self._executor
            # Publishes see _inflight > 0 and route around the live pool
            # instead of shutting it down mid-map.
            self._inflight += 1
        try:
            with _trace_stage("backend.map_chunks"):
                return list(executor.map(function, chunks, chunksize=batch))
        finally:
            with self._executor_lock:
                self._inflight -= 1

"""Pluggable execution backends for OCTOPUS's parallel compute.

RR-set sampling, topic-sample precomputation and influencer-sketch
construction are all built from i.i.d. tasks; this package decides *where*
those tasks run.  Pick a backend explicitly::

    from repro.backend import ThreadPoolBackend
    collection = RRSetCollection.sample(
        graph, probabilities, 20_000, seed=7, backend=ThreadPoolBackend(4)
    )

or by name through :func:`resolve_backend` (what the CLI's ``--backend`` /
``--workers`` flags and :class:`~repro.core.octopus.OctopusConfig` use)::

    backend = resolve_backend("processes", workers=4)

Determinism contract: for a fixed seed, every backend at every worker
count produces identical results, because work is chunked independently of
the worker count and each chunk owns a spawned RNG stream (see
:mod:`repro.backend.base`).  The guarantee holds per sampling kernel
(``vectorized`` / ``legacy``); RR-set chunks travel as packed flat arrays,
and :class:`ProcessPoolBackend` adopts the graph and edge-probability
arrays once per worker instead of pickling them per chunk.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.backend.base import (
    DEFAULT_RR_CHUNK_SIZE,
    ExecutionBackend,
    default_worker_count,
    seed_to_sequence,
)
from repro.backend.pools import ProcessPoolBackend, ThreadPoolBackend
from repro.backend.serial import SerialBackend
from repro.utils.validation import ValidationError

__all__ = [
    "DEFAULT_RR_CHUNK_SIZE",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "default_worker_count",
    "resolve_backend",
    "seed_to_sequence",
]

#: Recognised ``--backend`` spellings, in presentation order.
BACKEND_NAMES = ("serial", "threads", "processes")


def resolve_backend(
    spec: Union[None, str, ExecutionBackend],
    workers: Optional[int] = None,
) -> ExecutionBackend:
    """Turn a backend name (or an existing backend) into a backend.

    ``None`` and ``"serial"`` give a :class:`SerialBackend`; ``"threads"``
    and ``"processes"`` give the pooled backends with *workers* workers
    (default: the machine's CPU count).  An :class:`ExecutionBackend`
    instance passes through unchanged, letting callers share one pool
    across components.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None or spec == "serial":
        return SerialBackend()
    if spec == "threads":
        return ThreadPoolBackend(workers)
    if spec == "processes":
        return ProcessPoolBackend(workers)
    raise ValidationError(
        f"unknown execution backend {spec!r}; expected one of {BACKEND_NAMES}"
    )

"""Execution-backend abstraction for parallel compute.

OCTOPUS's heavy offline work — RR-set sampling, topic-sample precomputation,
sketch construction — consists of independent, identically-distributed
tasks, so it parallelises embarrassingly well.  An
:class:`ExecutionBackend` owns a worker pool (or no pool at all) and exposes
one primitive, :meth:`~ExecutionBackend.map_chunks`: apply a function to a
sequence of task chunks and return the results *in input order*.

Determinism is the design constraint.  Work is split into fixed-size chunks
whose count depends only on the problem size — never on the worker count —
and each chunk receives its own RNG stream spawned from the root seed (the
``SeedSequence.spawn`` protocol, the same device
:func:`repro.utils.rng.spawn_generators` uses).  The same seed therefore
produces bit-identical results on :class:`~repro.backend.serial.SerialBackend`,
:class:`~repro.backend.pools.ThreadPoolBackend` and
:class:`~repro.backend.pools.ProcessPoolBackend`, at any worker count — the
property the service layer's caching and replay guarantees rest on.  The
guarantee is per sampling *kernel* (vectorized or legacy; see
:mod:`repro.propagation.kernels`): each kernel is self-deterministic, but
the two draw in different orders and need not match each other.

:meth:`~ExecutionBackend.sample_rr_sets_packed` builds on ``map_chunks`` to
give every backend the chunked RR-sampling strategy shared by
:class:`~repro.propagation.rrsets.RRSetCollection`, the targeted-IM engine
and the RR-set spread oracle.  Chunk workers return packed ``(nodes,
offsets)`` arrays — two flat buffers per chunk — rather than pickled lists
of Python sets, and process pools adopt the graph and edge-probability
arrays once per worker (see
:class:`~repro.backend.pools.ProcessPoolBackend`) instead of shipping them
with every chunk.
"""

from __future__ import annotations

import abc
import os
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.propagation.kernels import DEFAULT_RR_KERNEL, check_rr_kernel
from repro.propagation.packed import PackedRRSets
from repro.utils.rng import SeedLike
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "DEFAULT_RR_CHUNK_SIZE",
    "ExecutionBackend",
    "default_worker_count",
    "rr_chunk_plan",
    "seed_to_sequence",
]

# Fixed chunk granularity for RR sampling.  Part of the determinism
# contract: results depend on the chunk size, so it must never be derived
# from the worker count.
DEFAULT_RR_CHUNK_SIZE = 256


def default_worker_count() -> int:
    """Worker count to use when the caller doesn't specify one."""
    return max(os.cpu_count() or 1, 1)


def rr_chunk_plan(
    num_sets: int,
    chunk_size: int,
    sequence: np.random.SeedSequence,
    root_cycle: Optional[List[int]] = None,
) -> List[Tuple[int, np.random.SeedSequence, Optional[List[int]]]]:
    """The deterministic chunk decomposition of one RR-sampling call.

    Returns ``(count, seed_sequence, roots)`` per chunk.  This is *the*
    determinism seam of the backend layer: the chunk count and the
    per-chunk spawned streams depend only on ``(num_sets, chunk_size,
    sequence)`` — never on worker or shard counts — so any scheduler
    (a worker pool mapping chunks, or a cluster coordinator handing
    contiguous chunk ranges to shard processes) reproduces the exact
    sample batch as long as it concatenates chunk results in plan order.
    With *root_cycle*, chunk ``c``'s slice follows the same
    ``roots[i % len(roots)]`` cycling the serial sampler uses.
    """
    counts = [
        min(chunk_size, num_sets - start)
        for start in range(0, num_sets, chunk_size)
    ]
    children = sequence.spawn(len(counts))
    plan: List[Tuple[int, np.random.SeedSequence, Optional[List[int]]]] = []
    offset = 0
    for count, child in zip(counts, children):
        chunk_roots = None
        if root_cycle is not None:
            chunk_roots = [
                root_cycle[(offset + index) % len(root_cycle)]
                for index in range(count)
            ]
        plan.append((count, child, chunk_roots))
        offset += count
    return plan


def seed_to_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Collapse any seed form into a spawnable :class:`SeedSequence`.

    Passing a live :class:`~numpy.random.Generator` consumes one draw from
    it (mirroring :func:`repro.utils.rng.spawn_generators`), so sharing a
    stream across sequential parallel stages remains reproducible.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


# ----------------------------------------------------------------------
# Shared sampling state (graph + edge probabilities) for process pools
# ----------------------------------------------------------------------
#
# In the parent, :meth:`ProcessPoolBackend._sampling_payload` registers the
# arrays here under an integer token and ships only the token per chunk;
# workers adopt the registry once — by fork inheritance where available,
# and in every case through the pool initializer — and resolve tokens
# locally.  In-memory backends never touch the registry: their chunk
# payloads carry the object references directly.

_SHARED_SAMPLING_STATE: Dict[int, Tuple[Any, np.ndarray]] = {}
_NEXT_SHARED_TOKEN = 0
# Tokens are allocated by backends that hold only their own instance lock,
# so the counter and registry insert need module-level protection.
_SHARED_STATE_LOCK = threading.Lock()


def _publish_sampling_state(graph: Any, edge_probabilities: np.ndarray) -> int:
    """Register ``(graph, edge_probabilities)`` in-parent; returns a token."""
    global _NEXT_SHARED_TOKEN
    with _SHARED_STATE_LOCK:
        token = _NEXT_SHARED_TOKEN
        _NEXT_SHARED_TOKEN += 1
        _SHARED_SAMPLING_STATE[token] = (graph, edge_probabilities)
    return token


def _discard_sampling_state(token: int) -> None:
    """Drop a registered payload (eviction; parent side only)."""
    _SHARED_SAMPLING_STATE.pop(token, None)


def _install_sampling_state(entries: Dict[int, Tuple[Any, np.ndarray]]) -> None:
    """Pool initializer: adopt the parent's registry once per worker."""
    _SHARED_SAMPLING_STATE.update(entries)


def _resolve_sampling_payload(payload: Any) -> Tuple[Any, np.ndarray]:
    """Turn a chunk payload (token or direct pair) into ``(graph, probs)``."""
    if isinstance(payload, int):
        try:
            return _SHARED_SAMPLING_STATE[payload]
        except KeyError:  # pragma: no cover — defensive; pools restart on publish
            raise RuntimeError(
                f"worker has no shared sampling state for token {payload}"
            ) from None
    return payload


def _sample_rr_chunk(
    task: Tuple[Any, int, np.random.SeedSequence, Optional[List[int]], str],
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one chunk of RR sets from its private spawned stream.

    Module-level (not a closure) so :class:`ProcessPoolBackend` can pickle
    it.  Roots are either pre-assigned (weighted/fixed-root sampling) or
    drawn uniformly from the chunk's own stream.  Returns the packed
    ``(nodes, offsets)`` arrays — flat buffers, cheap to pickle back.
    """
    from repro.propagation.rrsets import sample_packed_rr_sets

    payload, count, seed_sequence, roots, kernel = task
    graph, edge_probabilities = _resolve_sampling_payload(payload)
    rng = np.random.default_rng(seed_sequence)
    return sample_packed_rr_sets(
        graph, edge_probabilities, count, rng, roots, kernel
    )


class ExecutionBackend(abc.ABC):
    """How chunked work executes: serially, on threads, or on processes.

    Backends are context managers; pooled implementations release their
    workers on ``close()`` / ``__exit__``.
    """

    #: Short identifier (``serial`` / ``threads`` / ``processes``).
    name: str = "abstract"

    #: How chunk payloads travel back from workers: ``"inline"`` when no
    #: process boundary exists (serial / threads — results are passed by
    #: reference), ``"shm"`` / ``"pickle"`` for process-crossing backends
    #: (see :mod:`repro.backend.shm`).  Pure observability — surfaced as
    #: ``execution.payload_transport`` in stats snapshots, never an
    #: answer change.
    payload_transport: str = "inline"

    @property
    @abc.abstractmethod
    def workers(self) -> int:
        """Number of workers results are computed on (1 for serial)."""

    @abc.abstractmethod
    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Apply *function* to every chunk, returning results in order.

        *function* must be a module-level callable and every chunk must be
        picklable when the backend crosses process boundaries.
        """

    def close(self) -> None:
        """Release pooled resources (no-op for unpooled backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"

    # ------------------------------------------------------------------
    # Shared chunked-sampling strategy
    # ------------------------------------------------------------------

    def _sampling_payload(self, graph: Any, edge_probabilities: np.ndarray) -> Any:
        """The per-chunk payload carrying the sampling inputs.

        In-memory backends pass the object references straight through;
        :class:`~repro.backend.pools.ProcessPoolBackend` overrides this to
        publish the arrays once and ship an integer token instead.
        """
        return (graph, edge_probabilities)

    def sample_rr_sets_packed(
        self,
        graph: Any,
        edge_probabilities: np.ndarray,
        num_sets: int,
        seed: SeedLike = None,
        *,
        roots: Optional[Sequence[int]] = None,
        chunk_size: int = DEFAULT_RR_CHUNK_SIZE,
        kernel: str = DEFAULT_RR_KERNEL,
    ) -> PackedRRSets:
        """Sample *num_sets* RR sets in deterministic fixed-size chunks.

        With explicit *roots*, chunk ``c``'s slice follows the same
        ``roots[i % len(roots)]`` cycling the serial sampler uses, so
        fixed-root semantics are preserved.  Chunk count and per-chunk
        streams depend only on ``(num_sets, chunk_size, seed)``; results
        are deterministic per *kernel*.
        """
        check_positive(num_sets, "num_sets")
        check_positive(chunk_size, "chunk_size")
        check_rr_kernel(kernel)
        if graph.num_nodes == 0:
            raise ValidationError("cannot sample RR sets on an empty graph")
        root_cycle: Optional[List[int]] = None
        if roots is not None:
            root_cycle = [int(root) for root in roots]
            if not root_cycle:
                raise ValidationError("roots must not be empty when given")
            for root in root_cycle:
                if not 0 <= root < graph.num_nodes:
                    raise ValidationError(
                        f"root must be in [0, {graph.num_nodes}), got {root}"
                    )
        sequence = seed_to_sequence(seed)
        payload = self._sampling_payload(
            graph, np.asarray(edge_probabilities, dtype=np.float64)
        )
        tasks = [
            (payload, count, child, chunk_roots, kernel)
            for count, child, chunk_roots in rr_chunk_plan(
                num_sets, chunk_size, sequence, root_cycle
            )
        ]
        return self._collect_packed(graph.num_nodes, tasks)

    def _collect_packed(
        self, num_nodes: int, tasks: Sequence[Tuple]
    ) -> PackedRRSets:
        """Run the chunk tasks and assemble the packed batch.

        The transport seam: in-memory backends map the plain chunk
        function and concatenate the returned arrays;
        :class:`~repro.backend.pools.ProcessPoolBackend` overrides this to
        route chunk payloads through the shared-memory arena
        (:mod:`repro.backend.shm`) so only descriptors cross the pipe.
        Either way the assembled batch is identical byte for byte —
        transport is never allowed to change results.
        """
        chunks = self.map_chunks(_sample_rr_chunk, tasks)
        return PackedRRSets.from_chunks(num_nodes, chunks)

    def sample_rr_sets(
        self,
        graph: Any,
        edge_probabilities: np.ndarray,
        num_sets: int,
        seed: SeedLike = None,
        *,
        roots: Optional[Sequence[int]] = None,
        chunk_size: int = DEFAULT_RR_CHUNK_SIZE,
        kernel: str = DEFAULT_RR_KERNEL,
    ) -> Sequence[Set[int]]:
        """Like :meth:`sample_rr_sets_packed`, viewed as Python sets.

        Compatibility surface for callers that want the legacy
        ``List[Set[int]]`` shape; the sampling itself runs packed and the
        returned :class:`~repro.propagation.packed.PackedSetSequence`
        materialises each set lazily on first access (no eager whole-batch
        conversion), while still comparing equal to a list of the same
        sets.
        """
        return self.sample_rr_sets_packed(
            graph,
            edge_probabilities,
            num_sets,
            seed,
            roots=roots,
            chunk_size=chunk_size,
            kernel=kernel,
        ).as_set_sequence()

"""Execution-backend abstraction for parallel compute.

OCTOPUS's heavy offline work — RR-set sampling, topic-sample precomputation,
sketch construction — consists of independent, identically-distributed
tasks, so it parallelises embarrassingly well.  An
:class:`ExecutionBackend` owns a worker pool (or no pool at all) and exposes
one primitive, :meth:`~ExecutionBackend.map_chunks`: apply a function to a
sequence of task chunks and return the results *in input order*.

Determinism is the design constraint.  Work is split into fixed-size chunks
whose count depends only on the problem size — never on the worker count —
and each chunk receives its own RNG stream spawned from the root seed (the
``SeedSequence.spawn`` protocol, the same device
:func:`repro.utils.rng.spawn_generators` uses).  The same seed therefore
produces bit-identical results on :class:`~repro.backend.serial.SerialBackend`,
:class:`~repro.backend.pools.ThreadPoolBackend` and
:class:`~repro.backend.pools.ProcessPoolBackend`, at any worker count — the
property the service layer's caching and replay guarantees rest on.

:meth:`~ExecutionBackend.sample_rr_sets` builds on ``map_chunks`` to give
every backend the chunked RR-sampling strategy shared by
:class:`~repro.propagation.rrsets.RRSetCollection`, the targeted-IM engine
and the RR-set spread oracle.
"""

from __future__ import annotations

import abc
import os
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.utils.rng import SeedLike
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "DEFAULT_RR_CHUNK_SIZE",
    "ExecutionBackend",
    "default_worker_count",
    "seed_to_sequence",
]

# Fixed chunk granularity for RR sampling.  Part of the determinism
# contract: results depend on the chunk size, so it must never be derived
# from the worker count.
DEFAULT_RR_CHUNK_SIZE = 256


def default_worker_count() -> int:
    """Worker count to use when the caller doesn't specify one."""
    return max(os.cpu_count() or 1, 1)


def seed_to_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Collapse any seed form into a spawnable :class:`SeedSequence`.

    Passing a live :class:`~numpy.random.Generator` consumes one draw from
    it (mirroring :func:`repro.utils.rng.spawn_generators`), so sharing a
    stream across sequential parallel stages remains reproducible.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def _sample_rr_chunk(
    task: Tuple[Any, np.ndarray, int, np.random.SeedSequence, Optional[List[int]]],
) -> List[Set[int]]:
    """Sample one chunk of RR sets from its private spawned stream.

    Module-level (not a closure) so :class:`ProcessPoolBackend` can pickle
    it.  Roots are either pre-assigned (weighted/fixed-root sampling) or
    drawn uniformly from the chunk's own stream.
    """
    from repro.propagation.rrsets import _reverse_reachable

    graph, edge_probabilities, count, seed_sequence, roots = task
    rng = np.random.default_rng(seed_sequence)
    rr_sets: List[Set[int]] = []
    for index in range(count):
        if roots is not None:
            root = roots[index]
        else:
            root = int(rng.integers(0, graph.num_nodes))
        rr_sets.append(
            _reverse_reachable(graph, edge_probabilities, root, rng)
        )
    return rr_sets


class ExecutionBackend(abc.ABC):
    """How chunked work executes: serially, on threads, or on processes.

    Backends are context managers; pooled implementations release their
    workers on ``close()`` / ``__exit__``.
    """

    #: Short identifier (``serial`` / ``threads`` / ``processes``).
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def workers(self) -> int:
        """Number of workers results are computed on (1 for serial)."""

    @abc.abstractmethod
    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Apply *function* to every chunk, returning results in order.

        *function* must be a module-level callable and every chunk must be
        picklable when the backend crosses process boundaries.
        """

    def close(self) -> None:
        """Release pooled resources (no-op for unpooled backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"

    # ------------------------------------------------------------------
    # Shared chunked-sampling strategy
    # ------------------------------------------------------------------

    def sample_rr_sets(
        self,
        graph: Any,
        edge_probabilities: np.ndarray,
        num_sets: int,
        seed: SeedLike = None,
        *,
        roots: Optional[Sequence[int]] = None,
        chunk_size: int = DEFAULT_RR_CHUNK_SIZE,
    ) -> List[Set[int]]:
        """Sample *num_sets* RR sets in deterministic fixed-size chunks.

        With explicit *roots*, chunk ``c``'s slice follows the same
        ``roots[i % len(roots)]`` cycling the serial sampler uses, so
        fixed-root semantics are preserved.  Chunk count and per-chunk
        streams depend only on ``(num_sets, chunk_size, seed)``.
        """
        check_positive(num_sets, "num_sets")
        check_positive(chunk_size, "chunk_size")
        if graph.num_nodes == 0:
            raise ValidationError("cannot sample RR sets on an empty graph")
        root_cycle: Optional[List[int]] = None
        if roots is not None:
            root_cycle = [int(root) for root in roots]
            if not root_cycle:
                raise ValidationError("roots must not be empty when given")
            for root in root_cycle:
                if not 0 <= root < graph.num_nodes:
                    raise ValidationError(
                        f"root must be in [0, {graph.num_nodes}), got {root}"
                    )
        sequence = seed_to_sequence(seed)
        counts = [
            min(chunk_size, num_sets - start)
            for start in range(0, num_sets, chunk_size)
        ]
        children = sequence.spawn(len(counts))
        tasks = []
        offset = 0
        for count, child in zip(counts, children):
            chunk_roots = None
            if root_cycle is not None:
                chunk_roots = [
                    root_cycle[(offset + index) % len(root_cycle)]
                    for index in range(count)
                ]
            tasks.append(
                (graph, edge_probabilities, count, child, chunk_roots)
            )
            offset += count
        rr_sets: List[Set[int]] = []
        for chunk in self.map_chunks(_sample_rr_chunk, tasks):
            rr_sets.extend(chunk)
        return rr_sets

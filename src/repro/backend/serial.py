"""The serial execution backend: chunked semantics, no pool."""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.backend.base import ExecutionBackend

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Runs every chunk inline on the calling thread.

    The reference implementation of the backend contract: parallel
    backends must produce exactly what this one produces for the same
    seed, because chunking and per-chunk RNG streams — not scheduling —
    determine the results.  Chunk payloads (including the packed RR-set
    arrays) pass through by reference; nothing is copied or pickled.
    """

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def map_chunks(
        self, function: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Apply *function* chunk by chunk, in order."""
        return [function(chunk) for chunk in chunks]

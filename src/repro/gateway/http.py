"""Asyncio-native HTTP front end for the OCTOPUS service envelopes.

:class:`OctopusAsyncGateway` is the serving front door built for **many
connections**: where the threaded server (:mod:`repro.server.http`)
spends one OS thread per connection — dead weight for every idle
keep-alive socket — the gateway parks thousands of connections on one
event loop and spends threads only on *compute*, handing each admitted
request to the configured service executor through
``loop.run_in_executor`` over a bounded dispatch queue.

The wire protocol is byte-identical to the threaded server's — the same
endpoints (``POST /query``, ``POST /batch``, ``GET /stats``,
``GET /healthz``), the same envelopes, the same error→status mapping from
:mod:`repro.server.wire`, and the same
:func:`~repro.service.responses.deterministic_form` bytes for any query —
which is what lets the golden replay suites prove the transport swap safe.
On top of the transport the gateway adds the production-traffic controls
the threaded stack lacks:

* **admission control** — a bounded two-lane queue
  (:class:`~repro.gateway.admission.AdmissionQueue`); when a lane is full
  new requests are shed *immediately* with a structured 429 envelope and
  a ``Retry-After`` header, never buffered without bound;
* **priority lanes** — cheap queries (stats, suggest, complete, radar,
  paths) dispatch ahead of heavy ones (influence maximization, large
  batches), and heavy concurrency is capped below the worker count, so a
  burst of heavy queries cannot starve interactive traffic;
* **per-tenant rate limits** — token buckets keyed by the bearer auth
  token (:class:`~repro.gateway.limits.TenantRateLimiter`);
* **slow-client timeouts** — every socket read and write is bounded;
  stuck peers are disconnected and counted, never leaked.

``GET /healthz`` is answered inline on the event loop — it never touches
the admission queue, so liveness probes keep answering while the queue
sheds everything else.  ``GET /metrics`` (the Prometheus text scrape)
gets the same treatment: rendered inline from in-process counters, never
queued, never authed, so scrapes stay green under saturation.

Requests are traced end to end exactly like the threaded server's
(:mod:`repro.obs`): every ``POST`` gets a request id — adopted from a
well-formed ``X-Request-Id`` header or minted — echoed as a response
header and in the envelope's wall-clock section; the admission-queue
wait is recorded as a ``queue_wait`` stage; ``X-Debug-Timings: 1`` opts
into the per-stage ``timings`` breakdown; slow requests emit one
structured slow-query log line.  ``deterministic_form`` bytes are
identical with tracing on or off.

The gateway runs its event loop on a dedicated background thread and
exposes the same synchronous lifecycle as the threaded server
(:meth:`start` / :attr:`url` / :meth:`stats` / :meth:`health` /
:meth:`shutdown_gracefully`), so tests, benchmarks and the CLI drive
either front end through one surface.
"""

from __future__ import annotations

import asyncio
import json
import ssl
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http.client import responses as _REASON_PHRASES
from typing import Any, Callable, Dict, Optional, Set, Tuple
from urllib.parse import urlsplit

from repro.gateway.admission import (
    LANE_CHEAP,
    LANE_HEAVY,
    AdmissionQueue,
    lane_for_batch,
    lane_for_service,
    shed_envelope,
)
from repro.gateway.limits import ANONYMOUS_TENANT, TenantRateLimiter
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_exposition
from repro.obs.trace import (
    RequestTrace,
    clean_request_id,
    default_slow_query_ms,
    maybe_log_slow,
    stamp_response,
    trace_context,
    tracing_enabled_default,
)
from repro.server.wire import (
    HTTPCounters,
    batch_body_text,
    bearer_token_matches,
    decode_body,
    parse_batch,
    parse_content_length,
    retry_after_header_value,
    route_error_envelope,
    status_for_response,
    unauthorized_envelope,
)
from repro.service.middleware import Counters
from repro.service.responses import ServiceResponse, jsonify
from repro.utils.validation import check_positive

__all__ = ["GatewayConfig", "OctopusAsyncGateway", "start_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs of the asyncio gateway (all bounds, no behaviour).

    ``queue_depth`` bounds each admission lane; ``workers`` sizes both the
    dispatch slots and the compute thread pool; ``heavy_slots`` caps
    concurrent heavy queries (default: all but one worker, so cheap
    traffic always has a slot).  ``read_timeout`` / ``write_timeout``
    bound every socket interaction with a client; ``dispatch_timeout``
    bounds the whole queue-wait-plus-compute of one admitted request.
    ``tenant_rate`` (requests/second, with burst ``tenant_burst``) turns
    on per-tenant token buckets keyed by bearer token.  Bodies larger than
    ``inline_parse_bytes`` are classified heavy and parsed on a worker
    thread so the event loop never runs a large ``json.loads``.
    """

    queue_depth: int = 64
    workers: int = 4
    heavy_slots: Optional[int] = None
    fairness: int = 8
    heavy_batch_size: int = 16
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[int] = None
    read_timeout: float = 10.0
    write_timeout: float = 10.0
    dispatch_timeout: float = 300.0
    drain_timeout: float = 30.0
    retry_after_seconds: float = 1.0
    max_body_bytes: int = 8 * 1024 * 1024
    inline_parse_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        """Validate every bound at construction, not first use."""
        check_positive(self.queue_depth, "queue_depth")
        check_positive(self.workers, "workers")
        check_positive(self.heavy_batch_size, "heavy_batch_size")
        check_positive(self.read_timeout, "read_timeout")
        check_positive(self.write_timeout, "write_timeout")
        check_positive(self.dispatch_timeout, "dispatch_timeout")
        check_positive(self.drain_timeout, "drain_timeout")
        check_positive(self.retry_after_seconds, "retry_after_seconds")
        check_positive(self.max_body_bytes, "max_body_bytes")
        if self.tenant_rate is not None:
            check_positive(self.tenant_rate, "tenant_rate")


class _Request:
    """One parsed HTTP request head (body is read separately).

    ``started`` is the loop-clock instant the request line was read;
    the response writer turns it into the exchange's ``duration_ms``
    for the HTTP latency histogram.
    """

    __slots__ = ("method", "path", "version", "headers", "started")

    def __init__(
        self,
        method: str,
        path: str,
        version: str,
        headers: Dict[str, str],
        started: Optional[float] = None,
    ) -> None:
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers
        self.started = started


class _Job:
    """One admitted unit of compute: runs ``fn`` on the pool, resolves
    ``future`` with ``(status, body_text)``.

    ``trace`` is the request's :class:`~repro.obs.trace.RequestTrace`
    (or ``None`` untraced): context variables do not cross the
    ``run_in_executor`` hop, so the trace rides the job object and the
    compute closure re-activates it on the pool thread.
    """

    __slots__ = ("lane", "fn", "future", "enqueued", "trace")

    def __init__(
        self,
        lane: str,
        fn: Callable[[], Tuple[int, str]],
        future: "asyncio.Future[Tuple[int, str]]",
        enqueued: float,
        trace: Optional[RequestTrace] = None,
    ) -> None:
        self.lane = lane
        self.fn = fn
        self.future = future
        self.enqueued = enqueued
        self.trace = trace


#: Maximum header lines per request — beyond this the peer is babbling.
_MAX_HEADERS = 100
#: StreamReader line limit (also bounds a single header line).
_STREAM_LIMIT = 64 * 1024


def _retry_after_header(seconds: float) -> str:
    """``Retry-After`` delta-seconds (integral, at least 1, rounded up —
    shared with the threaded front end via :mod:`repro.server.wire` so
    both ceil identically and clients never retry early)."""
    return retry_after_header_value(seconds)


class OctopusAsyncGateway:
    """Asyncio serving gateway over an OCTOPUS service executor.

    Accepts any executor with the service surface — an
    :class:`~repro.service.OctopusService`, a
    :class:`~repro.service.ConcurrentOctopusService` pool, or a
    :class:`~repro.cluster.ClusterCoordinator` — and serves it with
    admission control, priority lanes, per-tenant limits and slow-client
    timeouts (see the module docstring).  ``port=0`` binds an ephemeral
    port; the bound address is on :attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: Optional[GatewayConfig] = None,
        auth_token: Optional[str] = None,
        ssl_context: Optional[ssl.SSLContext] = None,
        verbose: bool = False,
        tracing: Optional[bool] = None,
        slow_query_ms: Optional[float] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.config = config or GatewayConfig()
        self.auth_token = auth_token
        self.ssl_context = ssl_context
        self.verbose = verbose
        # Tracing defaults from the environment (REPRO_TRACE /
        # REPRO_SLOW_QUERY_MS) unless the caller pins them explicitly.
        self.tracing = (
            tracing_enabled_default() if tracing is None else bool(tracing)
        )
        self.slow_query_ms = (
            default_slow_query_ms()
            if slow_query_ms is None
            else float(slow_query_ms)
        )
        self.draining = False
        self.http_counters = HTTPCounters()
        self.gateway_counters = Counters(prefix="gateway.")
        self.final_stats: Optional[Dict[str, Any]] = None
        self._queue = AdmissionQueue(
            capacity=self.config.queue_depth,
            workers=self.config.workers,
            heavy_slots=self.config.heavy_slots,
            fairness=self.config.fairness,
        )
        self._tenants: Optional[TenantRateLimiter] = (
            TenantRateLimiter(
                self.config.tenant_rate, burst=self.config.tenant_burst
            )
            if self.config.tenant_rate is not None
            else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="octopus-gateway-compute",
        )
        self._started_at = time.monotonic()
        self._bound_address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_done = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        # Loop-confined state (created inside the loop thread):
        self._stop_requested: Optional[asyncio.Event] = None
        self._work_available: Optional[asyncio.Condition] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._connection_tasks: Set["asyncio.Task[None]"] = set()
        self._workers_stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OctopusAsyncGateway":
        """Boot the event loop thread and return once the socket accepts.

        Raises the bind error (port in use, bad TLS material) in the
        calling thread, not on a background stack.
        """
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="octopus-gateway", daemon=True
        )
        self._thread.start()
        if not self._startup_done.wait(timeout=15.0):
            raise RuntimeError("gateway event loop failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Block the calling thread until the gateway is shut down.

        The CLI's foreground mode: ``start()`` + wait.  Ctrl-C raises
        ``KeyboardInterrupt`` here; the caller then runs
        :meth:`shutdown_gracefully`.
        """
        self.start()
        while not self._stopped.wait(timeout=0.5):
            pass

    def shutdown_gracefully(self) -> Dict[str, Any]:
        """Stop accepting, drain admitted work, close the executor.

        Safe from any thread and idempotent; returns the final statistics
        snapshot (kept on :attr:`final_stats`), taken after the drain so
        every served request is counted.
        """
        with self._shutdown_lock:
            if self.final_stats is not None:
                return self.final_stats
            loop = self._loop
            if loop is not None and not loop.is_closed() and not self._stopped.is_set():
                event = self._stop_requested

                def _signal() -> None:
                    assert event is not None
                    event.set()

                try:
                    loop.call_soon_threadsafe(_signal)
                except RuntimeError:  # loop already closed under us
                    pass
                self._stopped.wait(
                    timeout=self.config.drain_timeout + self.config.read_timeout
                )
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            stats = self.stats()  # snapshot before the pool goes away
            self._pool.shutdown(wait=True)
            close = getattr(self.service, "close", None)
            if callable(close):
                close()
            self.final_stats = stats
            return stats

    def __enter__(self) -> "OctopusAsyncGateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown_gracefully()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        """Base URL of the bound socket (ephemeral port resolved)."""
        if self._bound_address is None:
            raise RuntimeError("gateway is not started")
        host, port = self._bound_address
        scheme = "https" if self.ssl_context is not None else "http"
        return f"{scheme}://{host}:{port}"

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body: liveness, uptime, queue gauges.

        Merges the executor's own ``health()`` (the cluster coordinator's
        per-shard liveness) exactly like the threaded server, and adds the
        gateway's lane depths so an overloaded-but-alive gateway is
        distinguishable from a healthy idle one.
        """
        payload: Dict[str, Any] = {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "requests_served": float(self.http_counters.total),
            "executor": type(self.service).__name__,
            "frontend": "asyncio",
            "lanes": self._queue.snapshot(),
        }
        describe = getattr(self.service, "health", None)
        if callable(describe):
            details = describe()
            payload["cluster"] = details
            if details.get("degraded") and not self.draining:
                payload["status"] = "degraded"
        return payload

    def stats(self) -> Dict[str, Any]:
        """Service + HTTP + gateway counters in one flat dict."""
        stats = dict(self.service.stats())
        stats.update(self.http_counters.snapshot())
        stats.update(self.gateway_counters.snapshot())
        for key, value in self._queue.snapshot().items():
            stats[f"gateway.{key}"] = value
        if self._tenants is not None:
            stats["gateway.tenants.tracked"] = float(
                self._tenants.tracked_tenants()
            )
        return stats

    def metrics_exposition(self) -> str:
        """The ``GET /metrics`` body (Prometheus text format 0.0.4).

        Rendered from in-process state only — the executor's
        ``ServiceMetrics`` and the gateway's HTTP counters — never from
        ``stats()``, which on a cluster executor pings every shard; a
        scrape must stay cheap and answer inline on the event loop.
        """
        metrics = getattr(self.service, "metrics", None)
        return render_exposition(
            service_state=metrics.export_state() if metrics is not None else None,
            http_state=self.http_counters.export_state(),
            extra={
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3
                ),
            },
        )

    # ------------------------------------------------------------------
    # Event loop thread
    # ------------------------------------------------------------------

    def _thread_main(self) -> None:
        """Own the event loop for the gateway's whole life."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced via start()
            if not self._startup_done.is_set():
                self._startup_error = error
        finally:
            loop.close()
            self._startup_done.set()
            self._stopped.set()

    async def _main(self) -> None:
        """Bind, serve, and — once shutdown is requested — drain."""
        self._stop_requested = asyncio.Event()
        self._work_available = asyncio.Condition()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.host,
                self.port,
                ssl=self.ssl_context,
                limit=_STREAM_LIMIT,
            )
        except OSError as error:
            self._startup_error = error
            return
        sockname = self._server.sockets[0].getsockname()
        self._bound_address = (sockname[0], sockname[1])
        loop = asyncio.get_running_loop()
        workers = [
            loop.create_task(self._worker_loop(), name=f"gateway-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._startup_done.set()
        await self._stop_requested.wait()
        # -- drain ------------------------------------------------------
        self._server.close()
        await self._server.wait_closed()
        self.draining = True
        deadline = loop.time() + self.config.drain_timeout
        while (
            self._queue.depth(LANE_CHEAP)
            or self._queue.depth(LANE_HEAVY)
            or self._queue.total_in_flight()
        ) and loop.time() < deadline:
            await asyncio.sleep(0.02)
        self._workers_stopping = True
        async with self._work_available:
            self._work_available.notify_all()
        done, pending = await asyncio.wait(workers, timeout=5.0)
        for task in pending:
            task.cancel()
        # Idle keep-alive connections end on socket close; stuck ones are
        # aborted so shutdown is bounded regardless of peers.  Handler
        # tasks are then cancelled and awaited — no coroutine may outlive
        # the loop (a GC'd half-run handler is a resource leak warning).
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        handlers = list(self._connection_tasks)
        for handler in handlers:
            handler.cancel()
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)

    # ------------------------------------------------------------------
    # Dispatch workers
    # ------------------------------------------------------------------

    async def _worker_loop(self) -> None:
        """One dispatch slot: waits for admissible work, runs it on the
        compute pool, resolves the connection's future."""
        assert self._work_available is not None
        loop = asyncio.get_running_loop()
        while True:
            async with self._work_available:
                await self._work_available.wait_for(
                    lambda: self._queue.can_take() or self._workers_stopping
                )
                taken = self._queue.take()
                if taken is None:
                    if self._workers_stopping:
                        return
                    continue  # another worker got there first
            lane, job = taken
            waited = loop.time() - job.enqueued
            waited_ms = waited * 1e3
            self.gateway_counters.observe(f"lane.{lane}.wait_ms", waited_ms)
            if job.trace is not None:
                job.trace.record("queue_wait", waited)
            try:
                outcome = await loop.run_in_executor(self._pool, job.fn)
            except Exception as error:  # noqa: BLE001 — envelope contract
                envelope = ServiceResponse.failure(
                    "http",
                    "internal_error",
                    f"{type(error).__name__}: {error}",
                )
                outcome = (status_for_response(envelope), envelope.to_json())
            if not job.future.done():
                job.future.set_result(outcome)
            self.gateway_counters.increment(f"lane.{lane}.served")
            async with self._work_available:
                self._queue.finish(lane)
                self._work_available.notify_all()

    async def _submit(
        self,
        lane: str,
        fn: Callable[[], Tuple[int, str]],
        trace: Optional[RequestTrace] = None,
    ) -> Optional["asyncio.Future[Tuple[int, str]]"]:
        """Admit one job, or return ``None`` when the lane sheds it."""
        assert self._work_available is not None
        loop = asyncio.get_running_loop()
        job = _Job(lane, fn, loop.create_future(), loop.time(), trace)
        if not self._queue.offer(lane, job):
            self.gateway_counters.increment(f"lane.{lane}.shed")
            return None
        self.gateway_counters.increment(f"lane.{lane}.enqueued")
        self.gateway_counters.observe(
            f"lane.{lane}.depth", float(self._queue.depth(lane))
        )
        async with self._work_available:
            self._work_available.notify(1)
        return job.future

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive connection: parse → admit → respond, repeat.

        Every read and write is bounded; any timeout or protocol garbage
        disconnects this peer without touching handler state elsewhere.
        """
        self.gateway_counters.increment("connections.opened")
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        self.gateway_counters.observe(
            "connections.active", float(len(self._writers))
        )
        try:
            while True:
                try:
                    request = await self._read_head(reader)
                except asyncio.TimeoutError:
                    self.gateway_counters.increment("timeouts.read")
                    break
                except (
                    ValueError,
                    ConnectionError,
                    asyncio.IncompleteReadError,
                ):
                    break  # protocol garbage or peer gone: just disconnect
                if request is None:
                    break  # clean EOF between requests
                try:
                    keep_alive = await self._serve_one(request, reader, writer)
                except asyncio.TimeoutError:
                    self.gateway_counters.increment("timeouts.read")
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not keep_alive or self.draining:
                    break
        except asyncio.CancelledError:
            # Drain-time cancellation.  Swallow it so the task completes
            # normally: Python 3.11's streams done-callback calls
            # ``task.exception()`` without a ``cancelled()`` guard and
            # would log a spurious loop error for every open connection.
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            transport = writer.transport
            try:
                writer.close()
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except (
                asyncio.TimeoutError,
                asyncio.CancelledError,
                ConnectionError,
                OSError,
            ):
                # Stuck peer, or we are being cancelled at drain: close
                # hard instead of waiting (the coroutine ends either way).
                if transport is not None:
                    transport.abort()

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        """Read one request line + headers (each read bounded).

        Returns ``None`` on a clean EOF before a request line (the peer
        closed an idle keep-alive connection).  Raises ``ValueError`` on
        protocol garbage and ``asyncio.TimeoutError`` on a slow client.
        """
        timeout = self.config.read_timeout
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            return None
        started = asyncio.get_running_loop().time()
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError as error:
            raise ValueError(f"malformed request line: {line!r}") from error
        if not version.startswith("HTTP/"):
            raise ValueError(f"not an HTTP version: {version!r}")
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await asyncio.wait_for(reader.readline(), timeout)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {raw!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ValueError("too many header lines")
        path = urlsplit(target).path
        return _Request(method.upper(), path, version, headers, started)

    async def _serve_one(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        keep_alive = (
            request.version == "HTTP/1.1"
            and request.headers.get("connection", "").lower() != "close"
        )
        # The trace exists before any error can be produced, so every
        # envelope out of this exchange — transport errors and 401s
        # included — carries the request id.
        trace = self._begin_trace(request)
        # Consume any declared body up front so an error response leaves
        # the connection byte-aligned for the next keep-alive request.
        body: Optional[str] = None
        if request.headers.get("content-length") is not None:
            length, error = parse_content_length(
                request.headers.get("content-length"),
                self.config.max_body_bytes,
            )
            if error is not None:
                # The (oversized or unparseable) body was never read; the
                # connection cannot be reused.
                await self._respond(
                    writer, request, error_envelope=error, trace=trace
                )
                return False
            raw = await asyncio.wait_for(
                reader.readexactly(length), self.config.read_timeout
            )
            body, error = decode_body(raw)
            if error is not None:
                await self._respond(
                    writer, request, error_envelope=error, trace=trace
                )
                return keep_alive
        elif request.method == "POST":
            _length, error = parse_content_length(
                None, self.config.max_body_bytes
            )
            await self._respond(
                writer, request, error_envelope=error, trace=trace
            )
            return False

        # Liveness is answered inline — never queued, never authed — so
        # probes see "alive" even while the queue sheds everything else.
        if request.method == "GET" and request.path == "/healthz":
            text = json.dumps(jsonify(self.health()), sort_keys=True)
            await self._respond(writer, request, status=200, body_text=text)
            return keep_alive

        # The scrape endpoint mirrors /healthz: unauthenticated and
        # rendered inline from in-process counters, so it stays green
        # under saturation and a scraper never needs the shared secret.
        if request.method == "GET" and request.path == "/metrics":
            await self._respond(
                writer,
                request,
                status=200,
                body_text=self.metrics_exposition(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
            return keep_alive

        if self.auth_token is not None and not bearer_token_matches(
            request.headers.get("authorization"), self.auth_token
        ):
            await self._respond(
                writer,
                request,
                error_envelope=unauthorized_envelope(),
                trace=trace,
            )
            return keep_alive

        if self._tenants is not None:
            tenant = self._tenant_of(request)
            allowed, retry_after = self._tenants.try_acquire(tenant)
            if not allowed:
                self.gateway_counters.increment("tenants.throttled")
                envelope = ServiceResponse.failure(
                    "http",
                    "rate_limited",
                    f"per-tenant rate limit exceeded; retry after "
                    f"{retry_after:.2f}s",
                    details={
                        "reason": "tenant_rate_limited",
                        "retry_after_seconds": retry_after,
                    },
                )
                await self._respond(
                    writer,
                    request,
                    error_envelope=envelope,
                    retry_after=retry_after,
                    trace=trace,
                )
                return keep_alive

        route = (request.method, request.path)
        if route == ("GET", "/stats"):
            fn = self._stats_job()
            lane = LANE_CHEAP
        elif route == ("POST", "/query"):
            lane, fn = self._query_job(
                body if body is not None else "", trace
            )
        elif route == ("POST", "/batch"):
            lane, fn = self._batch_job(
                body if body is not None else "", trace
            )
        else:
            hints = (
                ("/query", "/batch")
                if request.method == "GET"
                else ("/stats", "/healthz", "/metrics")
            )
            await self._respond(
                writer,
                request,
                error_envelope=route_error_envelope(request.path, hints),
                trace=trace,
            )
            return keep_alive

        future = await self._submit(lane, fn, trace)
        if future is None:
            retry_after = self.config.retry_after_seconds
            envelope = shed_envelope(
                lane, retry_after, self._queue.depth(lane)
            )
            await self._respond(
                writer,
                request,
                error_envelope=envelope,
                retry_after=retry_after,
                trace=trace,
            )
            return keep_alive
        try:
            status, text = await asyncio.wait_for(
                future, self.config.dispatch_timeout
            )
        except asyncio.TimeoutError:
            future.cancel()
            self.gateway_counters.increment("timeouts.dispatch")
            envelope = ServiceResponse.failure(
                "http",
                "internal_error",
                f"request dispatch exceeded "
                f"{self.config.dispatch_timeout:g}s",
            )
            await self._respond(
                writer, request, error_envelope=envelope, trace=trace
            )
            return False
        await self._respond(
            writer, request, status=status, body_text=text, trace=trace
        )
        return keep_alive

    def _begin_trace(self, request: _Request) -> Optional[RequestTrace]:
        """A fresh trace for one ``POST``, or ``None`` with tracing off.

        Adopts a well-formed ``X-Request-Id`` header (anything unsafe to
        echo is discarded and a fresh id minted); ``X-Debug-Timings``
        opts the response into the per-stage ``timings`` breakdown.
        GETs are untraced — they serve counters, not queries.
        """
        if not self.tracing or request.method != "POST":
            return None
        request_id = clean_request_id(request.headers.get("x-request-id"))
        debug = request.headers.get(
            "x-debug-timings", ""
        ).strip().lower() in ("1", "true", "yes", "on")
        return RequestTrace(request_id, debug=debug)

    def _tenant_of(self, request: _Request) -> str:
        """The rate-limit identity of a request: its bearer token."""
        header = request.headers.get("authorization", "")
        if header.startswith("Bearer ") and len(header) > len("Bearer "):
            return header[len("Bearer "):]
        return ANONYMOUS_TENANT

    # ------------------------------------------------------------------
    # Jobs (run on the compute pool, off the event loop)
    # ------------------------------------------------------------------

    def _stats_job(self) -> Callable[[], Tuple[int, str]]:
        """The ``/stats`` body, computed off-loop (a cluster executor's
        stats() does shard round-trips)."""

        def fn() -> Tuple[int, str]:
            return 200, json.dumps(jsonify(self.stats()), sort_keys=True)

        return fn

    def _query_job(
        self, body: str, trace: Optional[RequestTrace] = None
    ) -> Tuple[str, Callable[[], Tuple[int, str]]]:
        """Lane + compute closure for one ``/query`` body.

        Small bodies are parsed here (cheaply, on the loop) **only to
        pick the lane**; the dispatcher always receives the raw body
        string, exactly as the threaded front end hands it over, so
        every envelope — errors included — stays byte-identical across
        front ends.  Oversized bodies go to the heavy lane unparsed.

        The closure re-activates *trace* on the pool thread (context
        variables do not cross ``run_in_executor``), stamps the envelope
        with the request id, and emits the slow-query log line when the
        whole exchange ran over the threshold.
        """
        lane = LANE_CHEAP
        if len(body) > self.config.inline_parse_bytes:
            lane = LANE_HEAVY
        else:
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError:
                parsed = None  # dispatcher produces the canonical error
            if isinstance(parsed, dict):
                lane = lane_for_service(parsed.get("service"))

        def fn() -> Tuple[int, str]:
            with trace_context(trace):
                response = self.service.execute(body)
            if trace is not None:
                response = stamp_response(response, trace)
                maybe_log_slow(
                    trace,
                    service=response.service,
                    latency_ms=trace.elapsed_ms(),
                    threshold_ms=self.slow_query_ms,
                )
            return status_for_response(response), response.to_json()

        return lane, fn

    def _batch_job(
        self, body: str, trace: Optional[RequestTrace] = None
    ) -> Tuple[str, Callable[[], Tuple[int, str]]]:
        """Lane + compute closure for one ``/batch`` body."""

        def finish(responses: Any) -> Tuple[int, str]:
            if trace is not None:
                responses = [
                    stamp_response(item, trace) for item in responses
                ]
                maybe_log_slow(
                    trace,
                    service="batch",
                    latency_ms=trace.elapsed_ms(),
                    threshold_ms=self.slow_query_ms,
                )
            return 200, batch_body_text(responses)

        if len(body) > self.config.inline_parse_bytes:
            # Large batch: heavy by size; the worker thread parses it.
            def fn_raw() -> Tuple[int, str]:
                entries, error = parse_batch(body)
                if error is not None:
                    failure = stamp_response(error, trace)
                    return status_for_response(failure), failure.to_json()
                with trace_context(trace):
                    responses = self.service.execute_batch(entries)
                return finish(responses)

            return LANE_HEAVY, fn_raw
        entries, error = parse_batch(body)
        if error is not None:
            def fn_error() -> Tuple[int, str]:
                failure = stamp_response(error, trace)
                return status_for_response(failure), failure.to_json()

            return LANE_CHEAP, fn_error
        lane = lane_for_batch(entries, self.config.heavy_batch_size)

        def fn() -> Tuple[int, str]:
            with trace_context(trace):
                responses = self.service.execute_batch(entries)
            return finish(responses)

        return lane, fn

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        request: _Request,
        *,
        status: Optional[int] = None,
        body_text: Optional[str] = None,
        error_envelope: Optional[ServiceResponse] = None,
        retry_after: Optional[float] = None,
        trace: Optional[RequestTrace] = None,
        content_type: str = "application/json",
    ) -> None:
        """Write one bounded response (envelope or pre-rendered body).

        Every 429 carries a ``Retry-After`` header — from the explicit
        *retry_after*, the config default for shed requests, or the
        ``retry_after_seconds`` the service layer put in the envelope.
        With *trace* set, an error envelope is stamped with the request
        id before serialising and every response echoes it as an
        ``X-Request-Id`` header (pre-rendered success bodies were
        stamped by the compute closure).  A write that cannot drain
        within ``write_timeout`` aborts the connection: a stuck peer
        costs one socket, not a handler.
        """
        if error_envelope is not None:
            if trace is not None:
                error_envelope = stamp_response(error_envelope, trace)
            status = status_for_response(error_envelope)
            body_text = error_envelope.to_json()
            if retry_after is None and status == 429:
                details = error_envelope.error.details if error_envelope.error else {}
                retry_after = float(
                    details.get(
                        "retry_after_seconds", self.config.retry_after_seconds
                    )
                )
        assert status is not None and body_text is not None
        if retry_after is None and status == 429:
            retry_after = self._retry_after_from_body(body_text)
        body = body_text.encode("utf-8")
        close = self.draining or not (
            request.version == "HTTP/1.1"
            and request.headers.get("connection", "").lower() != "close"
        )
        reason = _REASON_PHRASES.get(status, "Unknown")
        head_lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        if trace is not None:
            head_lines.append(f"X-Request-Id: {trace.request_id}")
        if retry_after is not None:
            head_lines.append(f"Retry-After: {_retry_after_header(retry_after)}")
        if close:
            head_lines.append("Connection: close")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.config.write_timeout
            )
        except asyncio.TimeoutError:
            self.gateway_counters.increment("timeouts.write")
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise ConnectionError("write timed out; connection aborted") from None
        duration_ms: Optional[float] = None
        if request.started is not None:
            loop = asyncio.get_running_loop()
            duration_ms = (loop.time() - request.started) * 1e3
        self.http_counters.record(request.path, status, duration_ms)
        if self.verbose:
            print(
                f"gateway: {request.method} {request.path} -> {status}",
                file=sys.stderr,
            )

    def _retry_after_from_body(self, body_text: str) -> float:
        """Best-effort ``retry_after_seconds`` from a 429 envelope body."""
        try:
            details = json.loads(body_text)["error"]["details"]
            return float(details["retry_after_seconds"])
        except (KeyError, TypeError, ValueError, json.JSONDecodeError):
            return self.config.retry_after_seconds


def start_gateway(
    service: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    **gateway_kwargs: Any,
) -> OctopusAsyncGateway:
    """Boot a gateway (ephemeral port by default) and return it accepting.

    The asyncio twin of :func:`repro.server.http.serve_in_background`:
    tests and benchmarks get a running front end in one call and shut it
    down with :meth:`~OctopusAsyncGateway.shutdown_gracefully`.
    """
    return OctopusAsyncGateway(service, host, port, **gateway_kwargs).start()

"""Asyncio serving front end with production-traffic controls.

``repro.gateway`` is the scale-out front door to the OCTOPUS serving
stack: an asyncio-native HTTP server that multiplexes thousands of
keep-alive connections on one event loop and hands admitted compute to
any service executor — :class:`~repro.service.OctopusService`,
:class:`~repro.service.ConcurrentOctopusService` or
:class:`~repro.cluster.ClusterCoordinator` — through a bounded dispatch
queue.  It speaks exactly the wire protocol of the threaded server
(:mod:`repro.server`), byte-identical envelopes included, and adds the
controls production traffic needs:

* **admission control** (:class:`AdmissionQueue`) — bounded queues that
  shed overload immediately with structured 429 envelopes and
  ``Retry-After`` hints;
* **priority lanes** — cheap interactive queries dispatch ahead of heavy
  influence-maximization work, with capped heavy concurrency so neither
  lane can starve the other;
* **per-tenant rate limits** (:class:`TenantRateLimiter`) — token buckets
  keyed by bearer token;
* **slow-client timeouts** — every socket read and write is bounded.

Typical use::

    from repro.gateway import GatewayConfig, start_gateway

    gateway = start_gateway(service, config=GatewayConfig(queue_depth=32))
    print(gateway.url)          # http://127.0.0.1:<port>
    gateway.shutdown_gracefully()
"""

from repro.gateway.admission import (
    HEAVY_SERVICES,
    LANE_CHEAP,
    LANE_HEAVY,
    LANES,
    AdmissionQueue,
    lane_for_batch,
    lane_for_service,
    shed_envelope,
)
from repro.gateway.http import GatewayConfig, OctopusAsyncGateway, start_gateway
from repro.gateway.limits import ANONYMOUS_TENANT, TenantRateLimiter

__all__ = [
    "OctopusAsyncGateway",
    "GatewayConfig",
    "start_gateway",
    "AdmissionQueue",
    "TenantRateLimiter",
    "lane_for_service",
    "lane_for_batch",
    "shed_envelope",
    "LANE_CHEAP",
    "LANE_HEAVY",
    "LANES",
    "HEAVY_SERVICES",
    "ANONYMOUS_TENANT",
]

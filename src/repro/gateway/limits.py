"""Per-tenant rate limiting for the OCTOPUS serving gateway.

The service layer's :class:`~repro.service.middleware.RateLimitMiddleware`
throttles the *whole* deployment with one token bucket; a multi-tenant
front door needs one bucket **per caller**, so a single hot integration
cannot spend everyone else's budget.  Tenants are identified by their
bearer auth token (the identity the wire already carries — no new
credential concept), falling back to one shared ``"anonymous"`` bucket
when auth is off.

The bucket table is bounded: at most ``max_tenants`` buckets are kept,
least-recently-active evicted first, so an attacker cycling random tokens
grows a fixed-size table, not the heap.  (Evicting a bucket refills it —
strictly more permissive, never a lockout.)  The clock is injectable for
deterministic tests, and every decision returns the ``retry_after``
deficit so callers can emit an honest ``Retry-After`` header.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.utils.validation import check_positive

__all__ = ["TenantRateLimiter", "ANONYMOUS_TENANT"]

#: The bucket unauthenticated traffic shares when per-tenant limits are on
#: but bearer auth is off.
ANONYMOUS_TENANT = "anonymous"


class _Bucket:
    """One tenant's token bucket (tokens and last-refill instant)."""

    __slots__ = ("tokens", "last")

    def __init__(self, tokens: float, last: float) -> None:
        self.tokens = tokens
        self.last = last


class TenantRateLimiter:
    """Token buckets keyed by tenant identity, refilled on demand.

    Each tenant may burst up to *burst* requests and sustains
    *rate_per_second* thereafter.  Decisions are O(1); the table is an
    LRU bounded at *max_tenants*.  Thread-safe: the asyncio gateway calls
    from its event loop, tests and the threaded server may call from
    anywhere.
    """

    def __init__(
        self,
        rate_per_second: float,
        *,
        burst: Optional[int] = None,
        max_tenants: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        check_positive(rate_per_second, "rate_per_second")
        check_positive(max_tenants, "max_tenants")
        self.rate = float(rate_per_second)
        self.burst = float(
            burst if burst is not None else max(1, int(rate_per_second))
        )
        check_positive(self.burst, "burst")
        self.max_tenants = int(max_tenants)
        self._clock = clock
        self._buckets: "OrderedDict[str, _Bucket]" = OrderedDict()
        self._lock = threading.Lock()

    def try_acquire(self, tenant: str) -> Tuple[bool, float]:
        """Spend one token of *tenant* → ``(allowed, retry_after_seconds)``.

        ``retry_after_seconds`` is 0.0 when allowed, otherwise the time
        until the bucket next holds a whole token — the honest value for
        a ``Retry-After`` header.
        """
        with self._lock:
            now = self._clock()
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = _Bucket(self.burst, now)
                self._buckets[tenant] = bucket
                while len(self._buckets) > self.max_tenants:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(tenant)
                bucket.tokens = min(
                    self.burst, bucket.tokens + (now - bucket.last) * self.rate
                )
                bucket.last = now
            if bucket.tokens < 1.0:
                return False, (1.0 - bucket.tokens) / self.rate
            bucket.tokens -= 1.0
            return True, 0.0

    def tracked_tenants(self) -> int:
        """Buckets currently held (bounded by ``max_tenants``)."""
        with self._lock:
            return len(self._buckets)

"""Admission control for the OCTOPUS serving gateway.

The production-traffic rule this module encodes: **shed load before
collapse, never buffer without bound.**  Every request that cannot be
served promptly is rejected *immediately* with a structured 429 envelope
and a ``Retry-After`` hint — a full queue must cost an arriving request a
few microseconds, not a slot in an ever-growing buffer that takes the
whole process down.

Two priority lanes keep the interactive experience alive under mixed
traffic:

* the **cheap** lane carries short queries — stats, suggestions,
  completions, radar, path exploration — whose latency users feel;
* the **heavy** lane carries influence-maximization queries and large
  batches, which legitimately take seconds of compute.

Heavy work is capped at ``heavy_slots`` concurrent executions (strictly
fewer than the worker count), so however saturated the heavy lane is,
workers remain for cheap traffic — a burst of targeted-IM queries cannot
starve a dashboard's stats polls.  Dispatch prefers the cheap lane, with a
fairness valve (after ``fairness`` consecutive cheap dispatches a waiting
heavy job goes first) so a cheap flood cannot starve heavy work forever
either.

:class:`AdmissionQueue` is deliberately **pure logic** — plain deques and
integers, no asyncio, no threads, no clock.  The asyncio gateway wires it
to an event loop; the hypothesis property suite drives it through
arbitrary arrival/completion interleavings and checks the bound and the
shed contract directly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Sequence, Tuple

from repro.utils.validation import check_positive

__all__ = [
    "LANE_CHEAP",
    "LANE_HEAVY",
    "LANES",
    "HEAVY_SERVICES",
    "AdmissionQueue",
    "lane_for_service",
    "lane_for_batch",
    "shed_envelope",
]

LANE_CHEAP = "cheap"
LANE_HEAVY = "heavy"
LANES = (LANE_CHEAP, LANE_HEAVY)

#: Services whose single query is real compute (influence maximization
#: runs greedy max-cover over millions of RR sets).  Everything else —
#: stats, suggestions, completions, radar, paths — rides the cheap lane.
HEAVY_SERVICES = frozenset({"influencers", "targeted"})


def lane_for_service(service: Optional[str]) -> str:
    """The lane a single request of *service* rides (unknown → cheap).

    Unknown or missing service names go cheap on purpose: they terminate
    in a fast structured error inside the dispatcher, which is exactly
    cheap-lane work.
    """
    return LANE_HEAVY if service in HEAVY_SERVICES else LANE_CHEAP


def lane_for_batch(entries: Sequence[Any], heavy_batch_size: int) -> str:
    """The lane a ``/batch`` request rides.

    Heavy when the batch is large (``len(entries) >= heavy_batch_size``)
    or when any slot is a heavy service — one targeted-IM query inside a
    batch makes the whole batch heavy compute.
    """
    if len(entries) >= heavy_batch_size:
        return LANE_HEAVY
    for entry in entries:
        if isinstance(entry, dict) and entry.get("service") in HEAVY_SERVICES:
            return LANE_HEAVY
    return LANE_CHEAP


def shed_envelope(lane: str, retry_after_seconds: float, depth: int):
    """The structured 429 body for a request shed at admission.

    Uses the service layer's ``rate_limited`` code — the one
    :data:`~repro.server.wire.HTTP_STATUS_BY_ERROR_CODE` maps to 429 — so
    a shed request is wire-indistinguishable in *shape* from any other
    throttle: always a parseable envelope, never a hang or a 5xx.
    """
    from repro.service.responses import ServiceResponse

    return ServiceResponse.failure(
        "http",
        "rate_limited",
        f"server at capacity: the {lane} admission queue is full "
        f"({depth} waiting); retry after {retry_after_seconds:g}s",
        details={
            "reason": "queue_full",
            "lane": lane,
            "queue_depth": depth,
            "retry_after_seconds": float(retry_after_seconds),
        },
    )


class AdmissionQueue:
    """Bounded two-lane queue with capped heavy concurrency.

    Invariants (the hypothesis suite proves them over arbitrary
    interleavings of :meth:`offer` / :meth:`take` / :meth:`finish`):

    * a lane's queued depth never exceeds ``capacity`` — :meth:`offer`
      returns ``False`` (shed) instead;
    * heavy jobs in flight never exceed ``heavy_slots``;
    * total jobs in flight never exceed ``workers``;
    * :meth:`take` returns work whenever the policy admits any, so
      admitted work cannot be stranded while workers idle.
    """

    def __init__(
        self,
        *,
        capacity: int = 64,
        workers: int = 4,
        heavy_slots: Optional[int] = None,
        fairness: int = 8,
    ) -> None:
        check_positive(capacity, "capacity")
        check_positive(workers, "workers")
        self.capacity = int(capacity)
        self.workers = int(workers)
        # Heavy compute may fill all but one worker, never the last one:
        # that floor is what makes cheap-lane starvation impossible.
        default_heavy = max(1, self.workers - 1)
        self.heavy_slots = min(
            int(heavy_slots) if heavy_slots is not None else default_heavy,
            max(1, self.workers - 1) if self.workers > 1 else 1,
        )
        check_positive(self.heavy_slots, "heavy_slots")
        check_positive(fairness, "fairness")
        self.fairness = int(fairness)
        self._queues: Dict[str, Deque[Any]] = {
            LANE_CHEAP: deque(),
            LANE_HEAVY: deque(),
        }
        self._in_flight: Dict[str, int] = {LANE_CHEAP: 0, LANE_HEAVY: 0}
        self._shed: Dict[str, int] = {LANE_CHEAP: 0, LANE_HEAVY: 0}
        self._cheap_streak = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def depth(self, lane: str) -> int:
        """Queued (not yet dispatched) jobs in *lane*."""
        return len(self._queues[lane])

    def in_flight(self, lane: str) -> int:
        """Jobs of *lane* currently executing."""
        return self._in_flight[lane]

    def shed_count(self, lane: str) -> int:
        """Jobs of *lane* rejected at admission so far."""
        return self._shed[lane]

    def total_in_flight(self) -> int:
        """Jobs currently executing across both lanes."""
        return sum(self._in_flight.values())

    def snapshot(self) -> Dict[str, float]:
        """Flat gauge dict of depths, in-flight counts and shed totals."""
        stats: Dict[str, float] = {}
        for lane in LANES:
            stats[f"lane.{lane}.depth"] = float(self.depth(lane))
            stats[f"lane.{lane}.in_flight"] = float(self._in_flight[lane])
            stats[f"lane.{lane}.shed"] = float(self._shed[lane])
        return stats

    # ------------------------------------------------------------------
    # The admission protocol
    # ------------------------------------------------------------------

    def offer(self, lane: str, item: Any) -> bool:
        """Admit *item* to *lane*, or shed it (``False``) when full.

        Never blocks and never buffers beyond ``capacity`` — the caller
        turns a ``False`` into a 429 + ``Retry-After`` immediately.
        """
        queue = self._queues[lane]
        if len(queue) >= self.capacity:
            self._shed[lane] += 1
            return False
        queue.append(item)
        return True

    def can_take(self) -> bool:
        """Whether :meth:`take` would currently return a job."""
        return self._take_lane() is not None

    def take(self) -> Optional[Tuple[str, Any]]:
        """Dispatch the next job as ``(lane, item)``, or ``None``.

        Policy: nothing while all ``workers`` are busy; cheap before heavy
        (with the fairness valve letting a waiting heavy job through after
        ``fairness`` consecutive cheap dispatches); heavy only while fewer
        than ``heavy_slots`` heavy jobs are in flight.
        """
        lane = self._take_lane()
        if lane is None:
            return None
        if lane == LANE_CHEAP:
            self._cheap_streak += 1
        else:
            self._cheap_streak = 0
        self._in_flight[lane] += 1
        return lane, self._queues[lane].popleft()

    def finish(self, lane: str) -> None:
        """Mark one in-flight job of *lane* complete (frees its slot)."""
        assert self._in_flight[lane] > 0, f"no {lane} job in flight"
        self._in_flight[lane] -= 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _take_lane(self) -> Optional[str]:
        """The lane the policy would dispatch from right now, if any."""
        if self.total_in_flight() >= self.workers:
            return None
        heavy_ready = (
            self._queues[LANE_HEAVY]
            and self._in_flight[LANE_HEAVY] < self.heavy_slots
        )
        cheap_ready = bool(self._queues[LANE_CHEAP])
        if heavy_ready and (
            not cheap_ready or self._cheap_streak >= self.fairness
        ):
            return LANE_HEAVY
        if cheap_ready:
            return LANE_CHEAP
        return None

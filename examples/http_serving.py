#!/usr/bin/env python
"""Serving OCTOPUS over HTTP: the wire transport end to end, in one process.

The demo paper's deployment is a long-lived server answering many small
online queries.  This example plays both sides of that wire:

1. build a system and boot :class:`repro.OctopusHTTPServer` over a
   concurrent service executor, on an ephemeral loopback port;
2. talk to it with :class:`repro.OctopusClient` — single queries, a
   de-duplicated batch, health and statistics (the same four endpoints
   ``curl`` would hit);
3. show the determinism contract crossing the socket: the served payload
   is byte-identical to in-process execution;
4. shut down gracefully — in-flight requests drain into a final metrics
   report.

Run:  python examples/http_serving.py
"""

from repro import (
    CitationNetworkGenerator,
    ConcurrentOctopusService,
    FindInfluencersRequest,
    CompleteRequest,
    Octopus,
    OctopusClient,
    OctopusConfig,
    OctopusService,
    RadarRequest,
    serve_in_background,
)
from repro.service import deterministic_form


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=300,
        citations_per_paper=4,
        papers_per_author=3,
        seed=61,
    ).generate()
    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=100,
            num_topic_samples=6,
            topic_sample_rr_sets=400,
            oracle_samples=30,
            seed=7,
        ),
    )
    service = OctopusService(system)

    # -- 1. boot the server on an ephemeral port -----------------------
    executor = ConcurrentOctopusService(service, workers=4, mode="threads")
    server = serve_in_background(executor)
    print(f"serving on {server.url}")
    print("endpoints: POST /query  POST /batch  GET /stats  GET /healthz\n")

    with OctopusClient(server.url) as client:
        # -- 2. the four endpoints -------------------------------------
        health = client.health()
        print(f"healthz: {health['status']} (executor {health['executor']})")

        request = FindInfluencersRequest("data mining", k=5)
        response = client.execute(request)
        print(f"\nPOST /query {request.to_json()}")
        print(f"  -> ok={response.ok} latency={response.latency_ms:.1f} ms")
        for node, label in zip(response.payload["seeds"],
                               response.payload["labels"]):
            print(f"     {label} (user {node})")

        batch = [
            CompleteRequest(prefix="da", limit=5),
            RadarRequest("data mining"),
            FindInfluencersRequest("data mining", k=5),  # duplicate: cache hit
            CompleteRequest(prefix="da", limit=5),  # duplicate: shared
        ]
        responses = client.execute_batch(batch)
        print(f"\nPOST /batch with {len(batch)} requests")
        for entry in responses:
            print(
                f"  {entry.service:<12s} ok={entry.ok} "
                f"cache_hit={entry.cache_hit}"
            )

        # -- 3. the determinism contract crosses the socket ------------
        local = service.execute(request)
        identical = deterministic_form(response) == deterministic_form(local)
        print(f"\nserved == in-process (byte-identical payload): {identical}")

        stats = client.stats()
        print("\nGET /stats (selection):")
        for key in (
            "service.influencers.requests",
            "cache.hits",
            "cache.misses",
            "http.requests",
            "executor.workers",
        ):
            print(f"  {key:<35s} {stats[key]:.1f}")

    # -- 4. graceful shutdown ------------------------------------------
    final = server.shutdown_gracefully()
    print("\ngraceful shutdown; final counters:")
    print(f"  http.requests        {final['http.requests']:.0f}")
    print(f"  http.responses.2xx   {final['http.responses.2xx']:.0f}")


if __name__ == "__main__":
    main()

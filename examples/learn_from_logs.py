#!/usr/bin/env python
"""The full §II-B learning pipeline: fit the topic-aware IC model by EM.

Instead of using the generator's ground truth, this example treats the
action logs as the only observable data (as OCTOPUS must with real
networks), jointly learns ``pp^z_{u,v}`` and ``p(w|z)`` with the EM
algorithm of [2], and compares the resulting influence analyses against the
planted model.

Run:  python examples/learn_from_logs.py
"""

import numpy as np

from repro import CitationNetworkGenerator, Octopus, OctopusConfig
from repro.topics.em import EMConfig, TICLearner


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=400,
        citations_per_paper=4,
        papers_per_author=4,
        seed=51,
    ).generate()
    print(f"action log: {len(dataset.items)} items, "
          f"{dataset.summary()['num_exposures']:.0f} exposures, "
          f"{dataset.summary()['num_activations']:.0f} activations")

    print("\n== fitting the TIC model by EM ==")
    learner = TICLearner(
        dataset.graph,
        dataset.vocabulary,
        EMConfig(num_topics=8, max_iterations=30, seed=0),
    )
    fitted = learner.fit(dataset.items)
    lls = fitted.log_likelihoods
    print(f"converged after {fitted.iterations} iterations; "
          f"log-likelihood {lls[0]:.0f} → {lls[-1]:.0f}")

    print("\nlearned topics (top keywords):")
    for topic in range(fitted.topic_model.num_topics):
        top = ", ".join(w for w, _p in fitted.topic_model.top_words(topic, 4))
        print(f"  topic {topic}: {top}")

    print("\n== building OCTOPUS on the learned model ==")
    config = OctopusConfig(
        num_sketches=150,
        num_topic_samples=12,
        topic_sample_rr_sets=1000,
        oracle_samples=60,
        seed=52,
    )
    learned_system = Octopus(
        dataset.graph,
        fitted.topic_model,
        fitted.edge_weights,
        dataset.user_keywords,
        config=config,
    )
    planted_system = Octopus.from_dataset(dataset, config=config)

    print("\n== learned vs planted model on the same queries ==")
    for query in ("data mining", "consensus", "web search"):
        learned_result = learned_system.find_influencers(query, 5)
        planted_result = planted_system.find_influencers(query, 5)
        overlap = len(set(learned_result.seeds) & set(planted_result.seeds))
        print(f"  {query!r}: seed overlap {overlap}/5, spreads "
              f"{learned_result.spread:.1f} vs {planted_result.spread:.1f}")

    gamma_learned = learned_system.derive_gamma("data mining")
    gamma_planted = planted_system.derive_gamma("data mining")
    print(f"\nγ('data mining') sharpness: learned {gamma_learned.max():.2f}, "
          f"planted {gamma_planted.max():.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Online serving: mixed workload latency + streaming model refresh.

Demonstrates the "online influence analysis ... instant results" feature
under realistic conditions: a Zipf-skewed mix of the three services plus
auto-completion, latency percentiles before and after the result cache
warms, and the model-refresh path — periodic EM re-fits absorbed by the
influencer index without re-sampling its sketches.

Run:  python examples/online_serving.py
"""

import numpy as np

from repro import CitationNetworkGenerator, Octopus, OctopusConfig
from repro.core.dynamic import DynamicInfluenceEngine
from repro.engine.workload import QueryWorkload, WorkloadConfig, run_workload
from repro.topics.em import EMConfig, TICLearner
from repro.utils.timer import Timer


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=500,
        citations_per_paper=4,
        papers_per_author=3,
        seed=61,
    ).generate()
    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=150,
            num_topic_samples=16,
            topic_sample_rr_sets=1200,
            oracle_samples=60,
            seed=62,
        ),
    )

    print("== mixed query workload (Zipf-skewed, 120 queries) ==")
    workload = QueryWorkload.generate(
        system, WorkloadConfig(num_queries=120, zipf_s=1.5, seed=63)
    )
    print("\ncold cache:")
    cold = run_workload(system, workload)
    for line in cold.lines():
        print("  " + line)
    print("\nwarm cache (same workload again):")
    warm = run_workload(system, workload)
    for line in warm.lines():
        print("  " + line)

    print("\n== streaming model refresh ==")
    engine = DynamicInfluenceEngine(
        dataset.true_edge_weights, num_sketches=600, seed=64
    )
    gamma = np.full(8, 1.0 / 8)
    star = system.find_influencers("data mining", 1).seeds[0]
    print(f"initial spread of {dataset.graph.label_of(star)}: "
          f"{engine.estimate_user_spread(star, gamma):.1f}")

    chunks = np.array_split(np.arange(len(dataset.items)), 3)
    for round_index, chunk in enumerate(chunks, start=1):
        items = [dataset.items[i] for i in chunk]
        learner = TICLearner(
            dataset.graph,
            dataset.vocabulary,
            EMConfig(num_topics=8, max_iterations=5, seed=0),
        )
        fitted = learner.fit(items)
        with Timer() as timer:
            absorbed = engine.refresh(fitted.edge_weights)
        spread = engine.estimate_user_spread(star, gamma)
        print(f"refit #{round_index}: refresh "
              f"{'absorbed in place' if absorbed else 'rebuilt sketches'} "
              f"in {timer.elapsed * 1e3:.1f} ms; spread now {spread:.1f}")

    stats = engine.statistics()
    print(f"\nrefreshes absorbed: {stats['refreshes_absorbed']:.0f}, "
          f"rebuilt: {stats['refreshes_rebuilt']:.0f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Online serving through the typed service API: envelopes, batching, cache.

Demonstrates the "online influence analysis ... instant results" feature
under realistic conditions, all through :class:`repro.OctopusService` — the
request/response front door every client shares:

1. a single typed request and its JSON wire form (log-replayable),
2. a Zipf-skewed mixed workload of request objects, cold vs. warm cache,
3. batch execution de-duplicating repeated queries,
4. concurrent execution of the same workload on a worker pool
   (:class:`repro.ConcurrentOctopusService` — in-flight de-duplication,
   shared thread-safe cache and metrics),
5. the serving metrics the middleware stack collects for free,
6. the model-refresh path — periodic EM re-fits absorbed by the
   influencer index without re-sampling its sketches.

Run:  python examples/online_serving.py
"""

import numpy as np

from repro import (
    CitationNetworkGenerator,
    ConcurrentOctopusService,
    FindInfluencersRequest,
    Octopus,
    OctopusConfig,
    OctopusService,
    QueryWorkload,
    ServiceResponse,
    WorkloadConfig,
    run_workload,
)
from repro.core.dynamic import DynamicInfluenceEngine
from repro.topics.em import EMConfig, TICLearner
from repro.utils.timer import Timer


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=500,
        citations_per_paper=4,
        papers_per_author=3,
        seed=61,
    ).generate()
    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=150,
            num_topic_samples=16,
            topic_sample_rr_sets=1200,
            oracle_samples=60,
            seed=62,
        ),
    )
    service = OctopusService(system)

    print("== one typed request, and its wire form ==")
    request = FindInfluencersRequest("data mining", k=5)
    response = service.execute(request)
    print(f"request JSON : {request.to_json()}")
    print(f"top seeds    : {response.payload['labels'][:3]}")
    print(f"latency      : {response.latency_ms:.1f} ms "
          f"(cache_hit={response.cache_hit})")
    replayed = ServiceResponse.from_json(response.to_json())
    assert replayed == response  # responses round-trip losslessly

    print("\n== mixed query workload (Zipf-skewed, 120 queries) ==")
    workload = QueryWorkload.generate(
        service, WorkloadConfig(num_queries=120, zipf_s=1.5, seed=63)
    )
    print("\ncold cache:")
    cold = run_workload(service, workload)
    for line in cold.lines():
        print("  " + line)
    print("\nwarm cache (same workload again):")
    warm = run_workload(service, workload)
    for line in warm.lines():
        print("  " + line)

    print("\n== batch execution (duplicates shared, input order kept) ==")
    batch = [
        FindInfluencersRequest("data mining", k=5),
        FindInfluencersRequest("clustering", k=5),
        FindInfluencersRequest("data mining", k=5),  # duplicate → shared
    ]
    responses = service.execute_batch(batch)
    for req, resp in zip(batch, responses):
        print(f"  {req.keywords[0]:<14s} ok={resp.ok} "
              f"cache_hit={resp.cache_hit} {resp.latency_ms:.2f} ms")

    print("\n== concurrent serving (4 worker threads, same envelopes) ==")
    service.cache.clear()
    with ConcurrentOctopusService(service, workers=4) as executor:
        concurrent = run_workload(executor, workload)
        for line in concurrent.lines():
            print("  " + line)
        shared = executor.stats()["executor.shared_inflight"]
        print(f"  identical in-flight requests shared: {shared:.0f}")

    print("\n== serving metrics (collected by the middleware stack) ==")
    for key, value in sorted(service.metrics.snapshot().items()):
        print(f"  {key:<40s} {value:.3f}")

    print("\n== streaming model refresh ==")
    engine = DynamicInfluenceEngine(
        dataset.true_edge_weights, num_sketches=600, seed=64
    )
    gamma = np.full(8, 1.0 / 8)
    star = system.find_influencers("data mining", 1).seeds[0]
    print(f"initial spread of {dataset.graph.label_of(star)}: "
          f"{engine.estimate_user_spread(star, gamma):.1f}")

    chunks = np.array_split(np.arange(len(dataset.items)), 3)
    for round_index, chunk in enumerate(chunks, start=1):
        items = [dataset.items[i] for i in chunk]
        learner = TICLearner(
            dataset.graph,
            dataset.vocabulary,
            EMConfig(num_topics=8, max_iterations=5, seed=0),
        )
        fitted = learner.fit(items)
        with Timer() as timer:
            absorbed = engine.refresh(fitted.edge_weights)
        spread = engine.estimate_user_spread(star, gamma)
        print(f"refit #{round_index}: refresh "
              f"{'absorbed in place' if absorbed else 'rebuilt sketches'} "
              f"in {timer.elapsed * 1e3:.1f} ms; spread now {spread:.1f}")

    stats = engine.statistics()
    print(f"\nrefreshes absorbed: {stats['refreshes_absorbed']:.0f}, "
          f"rebuilt: {stats['refreshes_rebuilt']:.0f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario 2 — personalized influential keywords ("selling points").

For several researchers, suggests the k-sized keyword set maximising their
topic-aware influence, shows the per-keyword singleton spreads the pruning
stage computed, renders the radar interpretation, and (for a small candidate
pool) cross-checks greedy against exhaustive search.

Run:  python examples/selling_points.py
"""

from repro import CitationNetworkGenerator, Octopus, OctopusConfig
from repro.viz import render_radar


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=400,
        citations_per_paper=4,
        papers_per_author=4,
        seed=23,
    ).generate()
    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=300,
            num_topic_samples=8,
            topic_sample_rr_sets=800,
            oracle_samples=60,
            suggestion_candidate_limit=12,
            seed=24,
        ),
    )

    # Analyse the top influencers of two different areas.
    targets = []
    for query in ("data mining", "social network"):
        targets.extend(system.find_influencers(query, 2).seeds)

    for target in dict.fromkeys(targets):
        label = system.graph.label_of(target)
        print(f"\n=== selling points of {label} (user {target}) ===")

        greedy = system.suggest_keywords(target, k=3)
        print(f"greedy suggestion: {greedy.keywords} "
              f"(spread {greedy.spread:.1f}, "
              f"{greedy.elapsed_seconds * 1e3:.1f} ms, "
              f"{greedy.statistics['set_evaluations']:.0f} set evaluations)")

        exact = system.suggest_keywords(target, k=3, method="exact")
        print(f"exact suggestion : {exact.keywords} "
              f"(spread {exact.spread:.1f}, "
              f"{exact.statistics['set_evaluations']:.0f} set evaluations)")
        ratio = greedy.spread / max(exact.spread, 1e-9)
        print(f"greedy achieves {100 * ratio:.0f}% of the exhaustive optimum")

        ranked = sorted(
            greedy.per_keyword_spread.items(), key=lambda kv: -kv[1]
        )
        print("top candidate keywords by singleton spread:")
        for keyword, spread in ranked[:5]:
            print(f"  {keyword:<28s} {spread:6.1f}")

        print("\nradar interpretation:")
        print(render_radar(system.radar(greedy.keywords)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: build an OCTOPUS system and query all three services.

Generates a synthetic ACMCite-like citation network (the paper's first demo
network), builds the online indexes, wraps them in the typed
request/response service layer, and runs:

1. keyword-based influential user discovery ("data mining"),
2. personalized influential keyword suggestion for the top influencer,
3. influential path exploration with an ASCII rendering.

Every query goes through :class:`repro.OctopusService` — typed request in,
JSON-serializable :class:`repro.ServiceResponse` envelope out.

Run:  python examples/quickstart.py
"""

from repro import (
    CitationNetworkGenerator,
    ExplorePathsRequest,
    FindInfluencersRequest,
    Octopus,
    OctopusConfig,
    OctopusService,
    RadarRequest,
    StatsRequest,
    SuggestKeywordsRequest,
)
from repro.core.paths import PathTree
from repro.viz import render_path_tree, render_radar


def main() -> None:
    print("== generating synthetic ACMCite network ==")
    dataset = CitationNetworkGenerator(
        num_researchers=500,
        citations_per_paper=4,
        papers_per_author=3,
        seed=7,
    ).generate()
    for key, value in sorted(dataset.summary().items()):
        print(f"  {key:<20s} {value:,.0f}")

    print("\n== building OCTOPUS ==")
    config = OctopusConfig(
        num_sketches=200,
        num_topic_samples=16,
        topic_sample_rr_sets=1500,
        oracle_samples=80,
        # Index builds parallelise across a worker pool; with a fixed seed
        # "threads" and "processes" give identical results at any worker
        # count (the CLI equivalent is ``--backend threads --workers 4``;
        # the "serial" default keeps the historical single-stream results).
        execution_backend="threads",
        workers=4,
        seed=11,
    )
    service = OctopusService(Octopus.from_dataset(dataset, config=config))

    print("\n== service 1: keyword-based influential user discovery ==")
    response = service.execute(FindInfluencersRequest("data mining", k=5))
    found = response.raise_for_error().payload
    print(f"query keywords : {found['keywords']}")
    print(f"influence spread: {found['spread']:.1f} researchers")
    print(f"answered in     : {response.latency_ms:.1f} ms")
    ranked = zip(found["seeds"], found["labels"])
    for rank, (node, label) in enumerate(ranked, start=1):
        print(f"  {rank}. {label} (user {node})")

    print("\n== service 2: personalized influential keywords ==")
    star = found["seeds"][0]
    suggestion = service.execute(
        SuggestKeywordsRequest(user=star, k=3)
    ).raise_for_error().payload
    print(f"selling points of {suggestion['target_label']}:")
    for keyword in suggestion["keywords"]:
        print(f"  - {keyword}")
    print(f"topic-aware spread: {suggestion['spread']:.1f}")
    print("\nradar interpretation of the suggested keywords:")
    radar = service.execute(RadarRequest(suggestion["keywords"])).payload
    print(render_radar(radar))

    print("\n== service 3: influential path exploration ==")
    tree_payload = service.execute(
        ExplorePathsRequest(user=star, keywords="data mining", threshold=0.02)
    ).raise_for_error().payload
    tree = PathTree.from_dict(tree_payload)
    print(render_path_tree(tree, max_depth=3, max_children=3))
    clusters = tree.clusters(min_size=2)
    print(f"\n{len(clusters)} influence clusters; largest has "
          f"{len(clusters[0]) if clusters else 0} researchers")

    print("\n== system statistics ==")
    stats = service.execute(StatsRequest()).payload
    for key, value in sorted(stats.items()):
        print(f"  {key:<40s} {value:.4f}")


if __name__ == "__main__":
    main()

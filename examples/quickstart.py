#!/usr/bin/env python
"""Quickstart: build an OCTOPUS system and run all three services.

Generates a synthetic ACMCite-like citation network (the paper's first demo
network), builds the online indexes, and runs:

1. keyword-based influential user discovery ("data mining"),
2. personalized influential keyword suggestion for the top influencer,
3. influential path exploration with an ASCII rendering.

Run:  python examples/quickstart.py
"""

from repro import CitationNetworkGenerator, Octopus, OctopusConfig
from repro.viz import render_path_tree, render_radar


def main() -> None:
    print("== generating synthetic ACMCite network ==")
    dataset = CitationNetworkGenerator(
        num_researchers=500,
        citations_per_paper=4,
        papers_per_author=3,
        seed=7,
    ).generate()
    for key, value in sorted(dataset.summary().items()):
        print(f"  {key:<20s} {value:,.0f}")

    print("\n== building OCTOPUS ==")
    config = OctopusConfig(
        num_sketches=200,
        num_topic_samples=16,
        topic_sample_rr_sets=1500,
        oracle_samples=80,
        seed=11,
    )
    system = Octopus.from_dataset(dataset, config=config)

    print("\n== service 1: keyword-based influential user discovery ==")
    result = system.find_influencers("data mining", k=5)
    print(f"query keywords : {list(result.query.keywords)}")
    print(f"influence spread: {result.spread:.1f} researchers")
    print(f"answered in     : {result.elapsed_seconds * 1e3:.1f} ms")
    for rank, (node, label) in enumerate(result.top(5), start=1):
        print(f"  {rank}. {label} (user {node})")

    print("\n== service 2: personalized influential keywords ==")
    star = result.seeds[0]
    suggestion = system.suggest_keywords(star, k=3)
    print(f"selling points of {suggestion.target_label}:")
    for keyword in suggestion.keywords:
        print(f"  - {keyword}")
    print(f"topic-aware spread: {suggestion.spread:.1f}")
    print("\nradar interpretation of the suggested keywords:")
    print(render_radar(system.radar(suggestion.keywords)))

    print("\n== service 3: influential path exploration ==")
    tree = system.explore_paths(star, keywords="data mining", threshold=0.02)
    print(render_path_tree(tree, max_depth=3, max_children=3))
    clusters = tree.clusters(min_size=2)
    print(f"\n{len(clusters)} influence clusters; largest has "
          f"{len(clusters[0]) if clusters else 0} researchers")

    print("\n== system statistics ==")
    for key, value in sorted(system.statistics().items()):
        print(f"  {key:<40s} {value:.4f}")


if __name__ == "__main__":
    main()

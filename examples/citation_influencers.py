#!/usr/bin/env python
"""Scenario 1 — keyword-based influential user discovery on ACMCite.

Reproduces the demo's observation that influence maximization returns
*diverse* influencers (complementary coverage) rather than the redundant
top of an individual-influence ranking: the same query is answered by
OCTOPUS and by PageRank/degree rankings, and all seed sets are judged by an
independent Monte-Carlo estimator under the query topic.

Run:  python examples/citation_influencers.py
"""

import numpy as np

from repro import CitationNetworkGenerator, Octopus, OctopusConfig
from repro.im.heuristics import degree_seeds, pagerank_seeds
from repro.propagation.estimators import MonteCarloSpreadEstimator

QUERIES = ["data mining", "influence maximization", "query optimization"]
K = 5


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=600,
        citations_per_paper=4,
        papers_per_author=3,
        seed=17,
    ).generate()
    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=200,
            num_topic_samples=24,
            topic_sample_rr_sets=2000,
            oracle_samples=80,
            seed=18,
        ),
    )

    for query in QUERIES:
        print(f"\n=== query: {query!r} (k={K}) ===")
        result = system.find_influencers(query, K)
        gamma = system.derive_gamma(query)
        print(f"topic distribution peak: "
              f"{system.topic_names[int(np.argmax(gamma))]} "
              f"({gamma.max():.2f})")
        print(f"latency: {result.elapsed_seconds * 1e3:.1f} ms  "
              f"(from sample: "
              f"{bool(result.statistics.get('answered_from_sample', 0))})")

        probabilities = dataset.true_edge_weights.edge_probabilities(gamma)
        judge = MonteCarloSpreadEstimator(
            dataset.graph, probabilities, num_samples=600, seed=1
        )

        octopus_spread = judge.spread(result.seeds)
        pagerank_set = pagerank_seeds(dataset.graph, K).seeds
        degree_set = degree_seeds(dataset.graph, K).seeds
        rows = [
            ("OCTOPUS (topic-aware IM)", result.seeds, octopus_spread),
            ("PageRank top-k", pagerank_set, judge.spread(pagerank_set)),
            ("out-degree top-k", degree_set, judge.spread(degree_set)),
        ]
        print(f"{'method':<28s}{'spread':>8s}  seeds")
        for name, seeds, spread in rows:
            labels = ", ".join(dataset.graph.label_of(s) for s in seeds[:3])
            print(f"{name:<28s}{spread:>8.1f}  {labels}, …")

        # Diversity: how much of the joint spread is non-overlapping.
        singles = sum(judge.spread([s]) for s in result.seeds)
        print(f"sum of individual spreads {singles:.1f} vs joint "
              f"{octopus_spread:.1f} → overlap factor "
              f"{singles / max(octopus_spread, 1e-9):.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The QQ deployment scenario — viral marketing on a friendship network.

"OCTOPUS can allow an end-user to input keywords 'game' to find influential
users on topic game in the network, and the end-user can decide to push an
ad to them.  Moreover, OCTOPUS can also suggest influential keywords for a
user, such as 'Gum', 'Strawberry' and 'Xylitol', which indicates the user is
more influential for food-related products."

Run:  python examples/viral_marketing_qq.py
"""

import numpy as np

from repro import Octopus, OctopusConfig, SocialNetworkGenerator


def main() -> None:
    print("== generating synthetic QQ-like friendship network ==")
    dataset = SocialNetworkGenerator(
        num_users=800,
        friends_per_user=6,
        posts_per_user=3,
        seed=41,
    ).generate()
    for key, value in sorted(dataset.summary().items()):
        print(f"  {key:<20s} {value:,.0f}")

    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=200,
            num_topic_samples=16,
            topic_sample_rr_sets=1500,
            oracle_samples=80,
            seed=42,
        ),
    )

    print("\n== ad targeting: who should receive the 'game' campaign? ==")
    result = system.find_influencers("game", k=8)
    print(f"pushing the ad to these {len(result.seeds)} users reaches an "
          f"estimated {result.spread:.0f} users "
          f"({100 * result.spread / dataset.graph.num_nodes:.1f}% of the "
          f"network):")
    for node, label in result.top(8):
        degree = dataset.graph.out_degree(node)
        print(f"  {label:<22s} ({degree} friends)")

    print("\n== campaign budget sweep ==")
    for k in (1, 2, 4, 8, 16):
        spread = system.find_influencers("game", k=k).spread
        print(f"  k={k:<3d} → estimated reach {spread:7.1f}")

    print("\n== which users are food influencers? ==")
    food_topic = dataset.topic_names.index("food")
    food_lovers = [
        user
        for user, words in dataset.user_keywords.items()
        if len(words) >= 4
        and int(np.argmax(dataset.node_affinities[user])) == food_topic
        and dataset.graph.out_degree(user) >= 5
    ]
    for user in food_lovers[:3]:
        suggestion = system.suggest_keywords(user, k=3)
        print(f"  {suggestion.target_label:<22s} → {suggestion.keywords} "
              f"(spread {suggestion.spread:.1f})")

    print("\n== keyword auto-completion (the demo's input assist) ==")
    for prefix in ("ga", "str", "ip"):
        completions = system.autocomplete_keywords(prefix, limit=3)
        rendered = ", ".join(key for key, _wid in completions)
        print(f"  '{prefix}' → {rendered}")


if __name__ == "__main__":
    main()

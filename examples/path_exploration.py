#!/usr/bin/env python
"""Scenario 3 — interactive influential path exploration.

Builds forward ("whom does X influence") and reverse ("who influences X")
maximum-influence arborescences, reports the clusters the influenced users
form, simulates the demo's click-highlight interaction, and writes the
d3js-compatible payloads the OCTOPUS web UI would render.

Run:  python examples/path_exploration.py
"""

import json
import os

from repro import CitationNetworkGenerator, Octopus, OctopusConfig
from repro.viz import (
    path_tree_to_d3_force,
    path_tree_to_d3_hierarchy,
    render_path_tree,
)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    dataset = CitationNetworkGenerator(
        num_researchers=500,
        citations_per_paper=4,
        papers_per_author=3,
        seed=31,
    ).generate()
    system = Octopus.from_dataset(
        dataset,
        config=OctopusConfig(
            num_sketches=100,
            num_topic_samples=8,
            topic_sample_rr_sets=800,
            oracle_samples=60,
            seed=32,
        ),
    )

    star = system.find_influencers("machine learning", 1).seeds[0]
    label = system.graph.label_of(star)

    print(f"=== how {label} influences the community ===")
    tree = system.explore_paths(star, keywords="machine learning",
                                threshold=0.02)
    print(render_path_tree(tree, max_depth=3, max_children=4))

    clusters = tree.clusters(min_size=2)
    print(f"\ninfluenced users form {len(clusters)} clusters of size >= 2:")
    for index, cluster in enumerate(clusters[:5]):
        names = ", ".join(tree.label_of(n) for n in cluster[:4])
        print(f"  cluster {index}: {len(cluster)} users ({names}, …)")

    # The click interaction: highlight all paths through the strongest child.
    children = tree.children()[tree.root]
    if children:
        clicked = children[0]
        paths = tree.paths_through(clicked)
        print(f"\nclicking on {tree.label_of(clicked)} highlights "
              f"{len(paths)} paths, e.g.:")
        for path in paths[:3]:
            print("  " + " → ".join(tree.label_of(n) for n in path))

    # Reverse exploration: who influences an influenced researcher?
    some_influenced = max(
        (node for node in tree.parents if node != star),
        key=lambda n: tree.probabilities[n],
    )
    reverse = system.explore_paths(
        some_influenced, direction="influenced_by", threshold=0.02
    )
    print(f"\n=== who influences {reverse.label_of(reverse.root)} ===")
    print(render_path_tree(reverse, max_depth=2, max_children=4))

    # Threshold sweep: the interactivity knob.
    print("\nθ sweep (tree size grows as the threshold drops):")
    for theta in (0.1, 0.05, 0.02, 0.01):
        swept = system.explore_paths(star, threshold=theta)
        print(f"  θ={theta:<5g} → {swept.size:4d} nodes")

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    force_path = os.path.join(OUTPUT_DIR, "influence_force.json")
    hierarchy_path = os.path.join(OUTPUT_DIR, "influence_hierarchy.json")
    with open(force_path, "w", encoding="utf-8") as handle:
        json.dump(path_tree_to_d3_force(tree), handle, indent=1)
    with open(hierarchy_path, "w", encoding="utf-8") as handle:
        json.dump(path_tree_to_d3_hierarchy(tree), handle, indent=1)
    print(f"\nd3 payloads written to {force_path} and {hierarchy_path}")


if __name__ == "__main__":
    main()
